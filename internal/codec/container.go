package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Minimal container format for encoded clips, standing in for the MP4
// packaging role GPAC plays in the original toolchain (DESIGN.md): a
// header carrying the codec configuration followed by length-prefixed
// frames of length-prefixed macroblock chunks. All integers are unsigned
// varints.

// containerMagic identifies the format.
var containerMagic = [4]byte{'T', 'V', 'I', 'D'}

const containerVersion = 1

// WriteContainer serialises an encoded clip.
func WriteContainer(w io.Writer, cfg Config, frames []*EncodedFrame) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(containerMagic[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	fields := []uint64{
		containerVersion,
		uint64(cfg.Width), uint64(cfg.Height), uint64(cfg.GOPSize),
		uint64(cfg.QI * 1000), uint64(cfg.QP * 1000), uint64(cfg.SearchRange),
		uint64(len(frames)),
	}
	for _, f := range fields {
		if err := put(f); err != nil {
			return err
		}
	}
	for i, ef := range frames {
		if ef == nil {
			return fmt.Errorf("codec: cannot store nil frame %d", i)
		}
		if err := put(uint64(ef.Type)); err != nil {
			return err
		}
		if err := put(uint64(len(ef.MBData))); err != nil {
			return err
		}
		for _, mb := range ef.MBData {
			if err := put(uint64(len(mb))); err != nil {
				return err
			}
			if _, err := bw.Write(mb); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadContainer parses a clip written by WriteContainer.
func ReadContainer(r io.Reader) (Config, []*EncodedFrame, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Config{}, nil, err
	}
	if magic != containerMagic {
		return Config{}, nil, fmt.Errorf("codec: not a TVID container")
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	version, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	if version != containerVersion {
		return Config{}, nil, fmt.Errorf("codec: unsupported container version %d", version)
	}
	var cfg Config
	w, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	h, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	gop, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	qi, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	qp, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	sr, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	count, err := get()
	if err != nil {
		return Config{}, nil, err
	}
	// Cap the dimensions before trusting them: Validate only checks
	// positivity and alignment, and a hostile header with plausible-but-
	// huge dimensions would otherwise drive the per-frame macroblock
	// allocation below into the terabytes.
	const maxContainerDim = 1 << 14
	if w > maxContainerDim || h > maxContainerDim {
		return Config{}, nil, fmt.Errorf("codec: container dimensions %dx%d exceed %d", w, h, maxContainerDim)
	}
	cfg = Config{
		Width: int(w), Height: int(h), GOPSize: int(gop),
		QI: float64(qi) / 1000, QP: float64(qp) / 1000, SearchRange: int(sr),
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, nil, fmt.Errorf("codec: container config invalid: %w", err)
	}
	if count > 1<<20 {
		return Config{}, nil, fmt.Errorf("codec: implausible frame count %d", count)
	}
	mbTotal := cfg.MBCols() * cfg.MBRows()
	frames := make([]*EncodedFrame, count)
	for i := range frames {
		ft, err := get()
		if err != nil {
			return Config{}, nil, err
		}
		if ft > uint64(BFrame) {
			return Config{}, nil, fmt.Errorf("codec: bad frame type %d", ft)
		}
		nmb, err := get()
		if err != nil {
			return Config{}, nil, err
		}
		if int(nmb) != mbTotal {
			return Config{}, nil, fmt.Errorf("codec: frame %d has %d macroblocks, want %d", i, nmb, mbTotal)
		}
		ef := &EncodedFrame{Number: i, Type: FrameType(ft), MBData: make([][]byte, nmb)}
		for m := range ef.MBData {
			l, err := get()
			if err != nil {
				return Config{}, nil, err
			}
			if l > 1<<24 {
				return Config{}, nil, fmt.Errorf("codec: implausible macroblock of %d bytes", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(br, buf); err != nil {
				return Config{}, nil, err
			}
			ef.MBData[m] = buf
		}
		frames[i] = ef
	}
	return cfg, frames, nil
}
