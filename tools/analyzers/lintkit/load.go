package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the target module.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	allow allowIndex
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -json` in dir for the given patterns.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json=ImportPath,Dir,GoFiles,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPkg
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loader type-checks module-local packages from source, delegating
// standard-library imports to the compiler's source importer. It keeps
// everything offline: no export data, no module downloads.
type loader struct {
	fset     *token.FileSet
	std      types.Importer
	metas    map[string]*listPkg
	done     map[string]*checked
	checking map[string]bool
}

// checked caches one fully type-checked module-local package.
type checked struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

func (l *loader) Import(path string) (*types.Package, error) {
	if meta, ok := l.metas[path]; ok {
		c, err := l.check(meta)
		if err != nil {
			return nil, err
		}
		return c.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) check(meta *listPkg) (*checked, error) {
	if c, ok := l.done[meta.ImportPath]; ok {
		return c, nil
	}
	if l.checking[meta.ImportPath] {
		return nil, fmt.Errorf("import cycle through %s", meta.ImportPath)
	}
	l.checking[meta.ImportPath] = true
	defer delete(l.checking, meta.ImportPath)
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(meta.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", meta.ImportPath, err)
	}
	c := &checked{pkg: pkg, info: info, files: files}
	l.done[meta.ImportPath] = c
	return c, nil
}

// stdImporter is shared across every LoadDir call of a process: the
// source importer re-type-checks each standard-library package from
// source on first import, which dominates load time. It owns a private
// FileSet, so sharing it between runs is safe — analyzers never report
// positions inside the standard library. The mutation harness, which
// loads the module dozens of times (and, since it went parallel, from
// several goroutines at once), depends on this cache to stay inside
// its CI time budget; the mutex makes the cache safe to share.
var (
	stdImporterMu sync.Mutex
	stdImporter   types.Importer
)

// lockedImporter serializes Import calls: the underlying source
// importer mutates its internal package cache and is not safe for
// concurrent use. Import never re-enters the wrapper — the importer
// resolves transitive imports through its own internals — so a plain
// mutex cannot self-deadlock.
type lockedImporter struct {
	mu  *sync.Mutex
	imp types.Importer
}

func (li lockedImporter) Import(path string) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.imp.Import(path)
}

func sharedStdImporter() types.Importer {
	stdImporterMu.Lock()
	if stdImporter == nil {
		stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	imp := stdImporter
	stdImporterMu.Unlock()
	return lockedImporter{mu: &stdImporterMu, imp: imp}
}

// LoadDir loads and type-checks the packages matched by patterns
// (default ./...) inside the module rooted at dir. Only non-test Go
// files are parsed: the invariants guarded here are about shipped
// model, codec and transport code, and tests legitimately use exact
// comparisons and wall clocks to assert on them.
func LoadDir(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Metadata for the whole module so imports between target packages
	// always resolve, whatever subset the patterns select.
	metas, err := goList(dir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:     token.NewFileSet(),
		std:      sharedStdImporter(),
		metas:    make(map[string]*listPkg),
		done:     make(map[string]*checked),
		checking: make(map[string]bool),
	}
	for _, m := range metas {
		if m.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", m.ImportPath, m.Error.Err)
		}
		if len(m.GoFiles) > 0 {
			l.metas[m.ImportPath] = m
		}
	}
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		meta, ok := l.metas[t.ImportPath]
		if !ok {
			continue // outside the module, or no buildable Go files
		}
		c, err := l.check(meta)
		if err != nil {
			return nil, err
		}
		out = append(out, &Package{
			ImportPath: meta.ImportPath,
			Dir:        meta.Dir,
			Fset:       l.fset,
			Files:      c.files,
			Types:      c.pkg,
			Info:       c.info,
			allow:      buildAllowIndex(l.fset, c.files),
		})
	}
	return out, nil
}
