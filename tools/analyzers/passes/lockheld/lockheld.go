// Package lockheld flags mutexes held across blocking operations. A
// lock that protects shared pacing or reassembly state must bound a
// short critical section; holding it across a network write, a
// Pacer.Wait, a channel operation or a bare select stalls every other
// goroutine contending for the state — on the live paths that is a
// head-of-line blocking bug the race detector cannot see.
//
// The pass runs a forward may-analysis over the lintkit CFG: the fact
// is the set of mutexes held on some path, Lock/RLock add a key,
// Unlock/RUnlock remove it, and any blocking operation reached with a
// non-empty held set is reported. Blocking-ness is interprocedural:
// besides the intrinsic list (time.Sleep, netem Pacer.Wait, sync
// WaitGroup.Wait, net reads/writes/accepts/dials, http round trips,
// io.Copy/ReadFull/ReadAll, channel sends/receives/ranges and select
// without default), a module-local function is blocking when its body
// may reach any of those, computed bottom-up over the call graph.
//
// sync.Cond.Wait is the special case: it atomically releases the mutex
// while parked, so holding the lock there is correct and required —
// instead the pass reports Cond.Wait when *no* lock is held.
//
// Function literals are analyzed as separate function bodies with an
// empty held set: a literal generally runs on another goroutine (go,
// defer, callbacks), where the enclosing critical section does not
// apply.
package lockheld

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages are the layers with lock-guarded hot paths.
var DefaultPackages = []string{
	"internal/transport",
	"internal/netem",
	"internal/obs",
}

// Analyzer is the lockheld pass.
var Analyzer = &lintkit.Analyzer{
	Name: "lockheld",
	Doc: "Reports sync.Mutex/RWMutex locks held across blocking " +
		"operations (network I/O, pacing sleeps, channel operations, " +
		"select) and sync.Cond.Wait calls made without any lock held. " +
		"Blocking-ness of module-local callees is resolved through " +
		"bottom-up call-graph summaries.",
	Packages: DefaultPackages,
	Run:      run,
}

// blockingIntrinsics are the out-of-module calls assumed to park the
// goroutine.
var blockingIntrinsics = []struct {
	m    lintkit.FuncMatch
	desc string
}{
	{lintkit.FuncMatch{Path: "time", Name: "Sleep"}, "time.Sleep"},
	{lintkit.FuncMatch{Path: "internal/netem", Recv: "Pacer", Name: "Wait"}, "netem.Pacer.Wait"},
	{lintkit.FuncMatch{Path: "sync", Recv: "WaitGroup", Name: "Wait"}, "sync.WaitGroup.Wait"},
	{lintkit.FuncMatch{Path: "net", Recv: "Conn", Name: "Read"}, "net.Conn.Read"},
	{lintkit.FuncMatch{Path: "net", Recv: "Conn", Name: "Write"}, "net.Conn.Write"},
	// *net.UDPConn/TCPConn promote Read/Write from the unexported
	// embedded net.conn; the resolved method's receiver is that type.
	{lintkit.FuncMatch{Path: "net", Recv: "conn", Name: "Read"}, "net.Conn.Read"},
	{lintkit.FuncMatch{Path: "net", Recv: "conn", Name: "Write"}, "net.Conn.Write"},
	{lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "Read"}, "net.UDPConn.Read"},
	{lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "Write"}, "net.UDPConn.Write"},
	{lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "ReadFrom"}, "net.UDPConn.ReadFrom"},
	{lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "ReadFromUDP"}, "net.UDPConn.ReadFromUDP"},
	{lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "WriteTo"}, "net.UDPConn.WriteTo"},
	{lintkit.FuncMatch{Path: "net", Recv: "UDPConn", Name: "WriteToUDP"}, "net.UDPConn.WriteToUDP"},
	{lintkit.FuncMatch{Path: "net", Recv: "TCPConn", Name: "Read"}, "net.TCPConn.Read"},
	{lintkit.FuncMatch{Path: "net", Recv: "TCPConn", Name: "Write"}, "net.TCPConn.Write"},
	{lintkit.FuncMatch{Path: "net", Recv: "Listener", Name: "Accept"}, "net.Listener.Accept"},
	{lintkit.FuncMatch{Path: "net", Recv: "TCPListener", Name: "Accept"}, "net.TCPListener.Accept"},
	{lintkit.FuncMatch{Path: "net", Name: "Dial"}, "net.Dial"},
	{lintkit.FuncMatch{Path: "net", Name: "DialTimeout"}, "net.DialTimeout"},
	{lintkit.FuncMatch{Path: "net", Name: "Listen"}, "net.Listen"},
	{lintkit.FuncMatch{Path: "net", Name: "ListenPacket"}, "net.ListenPacket"},
	{lintkit.FuncMatch{Path: "net", Name: "ListenUDP"}, "net.ListenUDP"},
	{lintkit.FuncMatch{Path: "net/http", Recv: "Client", Name: "Do"}, "http.Client.Do"},
	{lintkit.FuncMatch{Path: "net/http", Recv: "Client", Name: "Get"}, "http.Client.Get"},
	{lintkit.FuncMatch{Path: "net/http", Recv: "Client", Name: "Post"}, "http.Client.Post"},
	{lintkit.FuncMatch{Path: "net/http", Name: "Get"}, "http.Get"},
	{lintkit.FuncMatch{Path: "net/http", Name: "Post"}, "http.Post"},
	{lintkit.FuncMatch{Path: "net/http", Recv: "ResponseWriter", Name: "Write"}, "http.ResponseWriter.Write"},
	{lintkit.FuncMatch{Path: "io", Name: "Copy"}, "io.Copy"},
	{lintkit.FuncMatch{Path: "io", Name: "CopyN"}, "io.CopyN"},
	{lintkit.FuncMatch{Path: "io", Name: "ReadFull"}, "io.ReadFull"},
	{lintkit.FuncMatch{Path: "io", Name: "ReadAll"}, "io.ReadAll"},
}

var condWait = lintkit.FuncMatch{Path: "sync", Recv: "Cond", Name: "Wait"}

func run(pass *lintkit.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	blocking := blockSummaries(pass.Prog)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, blocking, fd.Body)
			// Every literal is its own concurrent body.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, blocking, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// lockKey identifies one mutex: the root variable plus the selector
// path, so s.mu and t.mu are distinct even when s and t alias the same
// struct type.
type lockKey struct {
	root types.Object
	path string
}

// event is one lock-relevant action inside a CFG node, in source order.
type event struct {
	kind eventKind
	pos  token.Pos
	key  lockKey // lock/unlock events
	desc string  // blocking events
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evBlock
	evCondWait
)

// lockFlow implements the may-held analysis for one body.
type lockFlow struct {
	pass     *lintkit.Pass
	blocking map[*types.Func]string
	report   bool
	// skip holds the direct channel ops of select clause comm
	// statements; see selectCommOps.
	skip map[ast.Node]bool
}

// selectCommOps returns the direct channel operations of select clause
// comm statements. They execute only after the select has chosen their
// clause — when the channel is already ready — so the park point is the
// select header, not the op itself; counting them separately turns
// every non-blocking poll (select with default) into a false positive.
func selectCommOps(body ast.Node) map[ast.Node]bool {
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				skip[comm] = true
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					skip[u] = true
				}
			case *ast.AssignStmt:
				if len(comm.Rhs) == 1 {
					if u, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						skip[u] = true
					}
				}
			}
		}
		return true
	})
	return skip
}

type lockFact map[lockKey]token.Pos

func (p *lockFlow) EntryFact() lintkit.Fact { return lockFact{} }

func (p *lockFlow) Clone(f lintkit.Fact) lintkit.Fact {
	n := lockFact{}
	for k, v := range f.(lockFact) {
		n[k] = v
	}
	return n
}

func (p *lockFlow) Join(a, b lintkit.Fact) lintkit.Fact {
	x, y := a.(lockFact), b.(lockFact)
	for k, v := range y {
		if _, ok := x[k]; !ok {
			x[k] = v
		}
	}
	return x
}

func (p *lockFlow) Equal(a, b lintkit.Fact) bool {
	x, y := a.(lockFact), b.(lockFact)
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if _, ok := y[k]; !ok {
			return false
		}
	}
	return true
}

func (p *lockFlow) TransferEdge(e *lintkit.Edge, f lintkit.Fact) lintkit.Fact { return f }

func (p *lockFlow) Transfer(n ast.Node, f lintkit.Fact) lintkit.Fact {
	held := f.(lockFact)
	for _, ev := range p.events(n) {
		switch ev.kind {
		case evLock:
			held[ev.key] = ev.pos
		case evUnlock:
			delete(held, ev.key)
		case evBlock:
			if p.report && len(held) > 0 {
				p.pass.Reportf(ev.pos, "%s held across blocking %s", heldNames(held), ev.desc)
			}
		case evCondWait:
			// Cond.Wait releases its mutex while parked: holding the
			// lock is required, holding none is the bug.
			if p.report && len(held) == 0 {
				p.pass.Reportf(ev.pos, "sync.Cond.Wait called without holding any lock (Wait requires its c.L to be held)")
			}
		}
	}
	return held
}

func heldNames(held lockFact) string {
	// Deterministic order for stable diagnostics.
	var names []string
	for k := range held {
		names = append(names, k.path)
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// checkBody solves the analysis for one body, then reports in a single
// deterministic visit over the solved block facts.
func checkBody(pass *lintkit.Pass, blocking map[*types.Func]string, body *ast.BlockStmt) {
	cfg := lintkit.BuildCFG(body)
	p := &lockFlow{pass: pass, blocking: blocking, skip: selectCommOps(body)}
	in := lintkit.Solve(cfg, p)
	p.report = true
	for _, b := range cfg.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		f = p.Clone(f)
		for _, n := range b.Nodes {
			f = p.Transfer(n, f)
		}
	}
}

// events extracts the lock-relevant actions of one CFG node in source
// order. It respects the CFG's decomposition: range headers contribute
// only their ranged expression, case clause headers only their guard
// expressions, select headers only their blocking-ness, and function
// literals are never descended into (they are separate bodies).
func (p *lockFlow) events(n ast.Node) []event {
	var evs []event
	switch n := n.(type) {
	case *ast.RangeStmt:
		evs = p.exprEvents(n.X, nil)
		// Ranging over a channel parks between messages.
		if t := p.pass.TypesInfo.Types[n.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				evs = append(evs, event{kind: evBlock, pos: n.Pos(), desc: "receive (range over channel)"})
			}
		}
		return evs
	case *ast.CaseClause:
		for _, e := range n.List {
			evs = append(evs, p.exprEvents(e, nil)...)
		}
		return evs
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return nil // default clause: never parks
			}
		}
		return []event{{kind: evBlock, pos: n.Pos(), desc: "select with no default clause"}}
	case *ast.GoStmt:
		// Arguments are evaluated synchronously; the call itself runs
		// on the new goroutine.
		for _, a := range n.Call.Args {
			evs = append(evs, p.exprEvents(a, nil)...)
		}
		return evs
	case *ast.DeferStmt:
		// Argument evaluation is synchronous; the call runs at return,
		// where the critical section's extent is unknowable statically.
		for _, a := range n.Call.Args {
			evs = append(evs, p.exprEvents(a, nil)...)
		}
		return evs
	case *ast.SendStmt:
		evs = append(evs, p.exprEvents(n.Chan, nil)...)
		evs = append(evs, p.exprEvents(n.Value, nil)...)
		if p.skip[n] {
			return evs // select clause comm op: the select header parks
		}
		return append(evs, event{kind: evBlock, pos: n.Pos(), desc: "channel send"})
	case ast.Node:
		return p.exprEvents(n, nil)
	}
	return evs
}

// exprEvents walks an arbitrary subtree in source order, skipping
// function literals and nested statements the CFG placed elsewhere.
func (p *lockFlow) exprEvents(n ast.Node, evs []event) []event {
	if n == nil {
		return evs
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.IfStmt, *ast.ForStmt, *ast.RangeStmt:
			// Decomposed by the CFG; only reachable here when nested
			// inside an expression via a literal, which is already
			// excluded — defensive.
			return false
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				evs = append(evs, p.exprEvents(c.X, nil)...)
				if !p.skip[c] {
					evs = append(evs, event{kind: evBlock, pos: c.Pos(), desc: "channel receive"})
				}
				return false
			}
		case *ast.CallExpr:
			for _, a := range c.Args {
				evs = p.exprEvents(a, evs)
			}
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
				evs = p.exprEvents(sel.X, evs)
			}
			evs = append(evs, p.callEvents(c)...)
			return false
		}
		return true
	})
	return evs
}

// callEvents classifies one resolved call.
func (p *lockFlow) callEvents(call *ast.CallExpr) []event {
	fn := lintkit.FuncForCall(p.pass.TypesInfo, call)
	if fn == nil {
		return nil // function value / conversion: assumed non-blocking (documented under-approximation)
	}
	if k, kind, ok := p.lockOp(call, fn); ok {
		return []event{{kind: kind, pos: call.Pos(), key: k}}
	}
	if condWait.Matches(fn) {
		return []event{{kind: evCondWait, pos: call.Pos()}}
	}
	for _, b := range blockingIntrinsics {
		if b.m.Matches(fn) {
			return []event{{kind: evBlock, pos: call.Pos(), desc: "call to " + b.desc}}
		}
	}
	if desc, ok := p.blocking[fn]; ok {
		return []event{{kind: evBlock, pos: call.Pos(), desc: "call to " + fn.Name() + " (may block: " + desc + ")"}}
	}
	return nil
}

// lockOp recognizes Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex
// receivers (including embedded ones) and derives the lock key from the
// receiver expression.
func (p *lockFlow) lockOp(call *ast.CallExpr, fn *types.Func) (lockKey, eventKind, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, 0, false
	}
	var kind eventKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return lockKey{}, 0, false
	}
	recv := recvName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return lockKey{}, 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	key, ok := p.keyFor(sel.X)
	if !ok {
		return lockKey{}, 0, false
	}
	return key, kind, true
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// keyFor renders a lock expression to (root object, path text).
func (p *lockFlow) keyFor(e ast.Expr) (lockKey, bool) {
	root := rootIdent(e)
	if root == nil {
		return lockKey{}, false
	}
	obj := p.pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = p.pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return lockKey{}, false
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return lockKey{root: obj, path: root.Name}, true
	}
	return lockKey{root: obj, path: buf.String()}, true
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// blockSummaries computes, bottom-up over the module call graph, which
// module-local functions may block, with a short description of why.
type blockCacheKey struct{}

func blockSummaries(prog *lintkit.Program) map[*types.Func]string {
	v := prog.Cache(blockCacheKey{}, func() any {
		sums := make(map[*types.Func]string)
		cg := lintkit.BuildCallGraph(prog)
		for _, scc := range cg.BottomUp() {
			// Iterate the component: mutual recursion settles in at
			// most two rounds for a boolean property.
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					if _, done := sums[fn]; done {
						continue
					}
					src := prog.Source(fn)
					if src == nil {
						continue
					}
					if why, blocks := bodyMayBlock(src, sums); blocks {
						sums[fn] = why
						changed = true
					}
				}
			}
		}
		return sums
	})
	return v.(map[*types.Func]string)
}

// bodyMayBlock scans one declaration (excluding literals, which run on
// their own goroutines) for intrinsic blocking operations or calls to
// already-summarized blocking functions.
func bodyMayBlock(src *lintkit.FuncSource, sums map[*types.Func]string) (string, bool) {
	why := ""
	skip := selectCommOps(src.Decl.Body)
	ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false // the call runs asynchronously
		case *ast.DeferStmt:
			return false // runs at return, outside the caller's view
		case *ast.SendStmt:
			if skip[n] {
				return true // select clause comm op: the select parks, not the send
			}
			why = "channel send"
			return false
		case *ast.RangeStmt:
			if t := src.Pkg.Info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					why = "range over channel"
					return false
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				why = "select"
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !skip[n] {
				why = "channel receive"
				return false
			}
		case *ast.CallExpr:
			fn := lintkit.FuncForCall(src.Pkg.Info, n)
			if fn == nil {
				return true
			}
			if condWait.Matches(fn) {
				why = "sync.Cond.Wait"
				return false
			}
			for _, b := range blockingIntrinsics {
				if b.m.Matches(fn) {
					why = b.desc
					return false
				}
			}
			if sub, ok := sums[fn]; ok {
				why = fn.Name() + ": " + sub
				return false
			}
		}
		return true
	})
	return why, why != ""
}
