// Testdata for the cryptorand pass: the only sanctioned escape is an
// explicitly justified marker on the import line itself.
package vcryptdemo

import _ "math/rand" //lint:allow cryptorand contrived blank import; no key material involved
