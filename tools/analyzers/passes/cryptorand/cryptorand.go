// Package cryptorand guards the selective-encryption layer's key
// hygiene: inside internal/vcrypt, key, nonce and IV material must come
// from crypto/rand. The whole point of the paper's eavesdropper model
// is that marked payloads are computationally unreadable; a session key
// drawn from math/rand (seeded or not) is recoverable from a handful of
// outputs, which silently voids every confidentiality claim. The
// analyzer therefore bans math/rand from the package outright — any
// legitimate deterministic randomness vcrypt ever needs (there is none
// today) would have to be injected by a caller and justified with an
// explicit //lint:allow cryptorand marker on the import line.
package cryptorand

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages restricts the ban to the crypto layer.
var DefaultPackages = []string{"internal/vcrypt"}

// Analyzer is the cryptorand pass.
var Analyzer = &lintkit.Analyzer{
	Name:     "cryptorand",
	Doc:      "key/nonce/IV material must come from crypto/rand; math/rand is banned in the crypto layer",
	Packages: DefaultPackages,
	Run:      run,
}

var mathRandPaths = map[string]bool{"math/rand": true, "math/rand/v2": true}

func run(pass *lintkit.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if mathRandPaths[path] {
				pass.Reportf(imp.Pos(), "import of %s in the crypto layer: key material must come from crypto/rand", path)
			}
		}
		// Defence in depth against dot-imports or aliased escape: flag
		// any resolved use of a math/rand object, not just the import.
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || !mathRandPaths[obj.Pkg().Path()] {
				return true
			}
			if _, isPkgName := obj.(*types.PkgName); isPkgName {
				return true // the import spec case above already reported it
			}
			pass.Reportf(id.Pos(), "use of math/rand.%s in the crypto layer: key material must come from crypto/rand", obj.Name())
			return true
		})
	}
	return nil
}
