package floateq_test

import (
	"testing"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/floateq"
)

func TestFlagged(t *testing.T) {
	lintkit.RunTest(t, floateq.Analyzer, "testdata/flagged", "repro/internal/analytic")
}

func TestAllowMarker(t *testing.T) {
	lintkit.RunTestNone(t, floateq.Analyzer, "testdata/allowed", "repro/internal/stats")
}

func TestPackageFilter(t *testing.T) {
	// Non-numerical packages may compare floats exactly (sequence
	// numbers cast for jitter math and the like are their own problem).
	lintkit.RunTestNone(t, floateq.Analyzer, "testdata/flagged", "repro/internal/transport")
}
