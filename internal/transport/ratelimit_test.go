package transport

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewTokenBucket(10, 5) // 10/s, burst 5
	b.nowFn = func() time.Time { return now }
	for i := 0; i < 5; i++ {
		if !b.Allow() {
			t.Fatalf("burst event %d rejected", i)
		}
	}
	if b.Allow() {
		t.Fatal("event beyond burst admitted")
	}
	// 250ms refills 2.5 tokens → two admits.
	now = now.Add(250 * time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("refilled tokens not admitted")
	}
	if b.Allow() {
		t.Fatal("third event admitted on 2.5 tokens")
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewTokenBucket(100, 3)
	b.nowFn = func() time.Time { return now }
	// A long idle period must not accrue more than burst.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if b.Allow() {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after idle, want burst cap 3", admitted)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	b := NewTokenBucket(0, 1)
	for i := 0; i < 1000; i++ {
		if !b.Allow() {
			t.Fatal("unlimited bucket rejected an event")
		}
	}
}
