package codec

import (
	"sync"

	"repro/internal/video"
)

// Batched row coding. A macroblock row is coded in three phases instead
// of one pass per macroblock:
//
//	A. gather    — per macroblock, in wavefront order: motion search
//	               (P-frames) and sample/residual loading into a
//	               row-sized arena. This is the only phase that touches
//	               the cross-row motion-vector predictors, so the
//	               wavefront tokens move here and rows below can start
//	               correspondingly earlier.
//	B. transform — DCT + quantisation for every block of the row in one
//	               tight batch (better locality and branch behaviour
//	               than interleaving float kernels with entropy coding).
//	C. emit      — entropy-code each macroblock's quantised blocks and
//	               write its reconstruction.
//
// Phases B and C call the same quantiseBlock/entropyCodeBlock halves
// that encodeBlock is built from, and phase C writes bits in exactly the
// order encodeIntraMB/encodeInterMB would, so the bitstream is
// bit-identical to the per-macroblock path (pinned by
// TestBatchedRowMatchesPerMB). Batching is safe because nothing in
// phases B/C feeds back into phase A within a row: intra blocks predict
// from flat 128 and inter blocks from the previous frame's
// reconstruction, never from the current row's output.

// blocksPerMB is the number of 8x8 transform blocks per macroblock:
// four luma plus Cb and Cr.
const blocksPerMB = 6

// rowBatch is the pooled arena of one row's batched coding state.
type rowBatch struct {
	samples [][64]float64
	quant   [][64]int32
	nonzero []int
}

var rowBatchPool = sync.Pool{New: func() interface{} { return new(rowBatch) }}

func (b *rowBatch) resize(n int) {
	if cap(b.samples) < n {
		b.samples = make([][64]float64, n)
		b.quant = make([][64]int32, n)
		b.nonzero = make([]int, n)
		return
	}
	b.samples = b.samples[:n]
	b.quant = b.quant[:n]
	b.nonzero = b.nonzero[:n]
}

// gatherIntraMB loads the six centred sample blocks of one intra
// macroblock into the row batch (phase A).
func gatherIntraMB(b *rowBatch, src *video.Frame, mx, my int) {
	base := mx * blocksPerMB
	x0, y0 := mx*mbSize, my*mbSize
	i := base
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			loadBlock(src.Y, src.W, x0+bx*blockSize, y0+by*blockSize, 128, &b.samples[i])
			i++
		}
	}
	cw := src.W / 2
	cx0, cy0 := x0/2, y0/2
	loadBlock(src.Cb, cw, cx0, cy0, 128, &b.samples[base+4])
	loadBlock(src.Cr, cw, cx0, cy0, 128, &b.samples[base+5])
}

// gatherInterMB loads the six residual blocks of one inter macroblock for
// its chosen motion vector into the row batch (phase A).
func gatherInterMB(b *rowBatch, src, ref *video.Frame, mx, my, dx, dy int) {
	base := mx * blocksPerMB
	x0, y0 := mx*mbSize, my*mbSize
	i := base
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			loadResidual(src, ref, x0+bx*blockSize, y0+by*blockSize, dx, dy, &b.samples[i])
			i++
		}
	}
	cw, ch := src.W/2, src.H/2
	cx0, cy0 := x0/2, y0/2
	cdx, cdy := dx/2, dy/2
	for plane := 0; plane < 2; plane++ {
		sp, rp := src.Cb, ref.Cb
		if plane == 1 {
			sp, rp = src.Cr, ref.Cr
		}
		s := &b.samples[base+4+plane]
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				sv := float64(sp[(cy0+y)*cw+cx0+x])
				rv := chromaAt(rp, cw, ch, cx0+x+cdx, cy0+y+cdy)
				s[y*blockSize+x] = sv - rv
			}
		}
	}
}

// emitMB entropy-codes one macroblock from the quantised row batch and
// writes its reconstruction (phase C). The bit order — motion vector
// (inter only), four luma blocks, Cb, Cr — matches
// encodeIntraMB/encodeInterMB exactly.
func emitMB(b *rowBatch, sc *mbScratch, src, ref, recon *video.Frame, mvs [][2]int, ft FrameType, mx, my, cols int, qL, qC float64) {
	base := mx * blocksPerMB
	x0, y0 := mx*mbSize, my*mbSize
	var dx, dy int
	if ft != IFrame {
		v := mvs[my*cols+mx]
		dx, dy = v[0], v[1]
		sc.w.writeSE(int64(dx))
		sc.w.writeSE(int64(dy))
	}
	i := base
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			bx0, by0 := x0+bx*blockSize, y0+by*blockSize
			entropyCodeBlock(&sc.w, &b.quant[i], b.nonzero[i], qL, &sc.rec)
			if ft == IFrame {
				storeBlock(recon.Y, recon.W, bx0, by0, 128, &sc.rec)
			} else {
				storeCompensated(recon, ref, bx0, by0, dx, dy, &sc.rec)
			}
			i++
		}
	}
	cw, ch := src.W/2, src.H/2
	cx0, cy0 := x0/2, y0/2
	cdx, cdy := dx/2, dy/2
	for plane := 0; plane < 2; plane++ {
		entropyCodeBlock(&sc.w, &b.quant[base+4+plane], b.nonzero[base+4+plane], qC, &sc.rec)
		if ft == IFrame {
			p := recon.Cb
			if plane == 1 {
				p = recon.Cr
			}
			storeBlock(p, cw, cx0, cy0, 128, &sc.rec)
			continue
		}
		rp, op := ref.Cb, recon.Cb
		if plane == 1 {
			rp, op = ref.Cr, recon.Cr
		}
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				pv := chromaAt(rp, cw, ch, cx0+x+cdx, cy0+y+cdy)
				op[(cy0+y)*cw+cx0+x] = clampByte(pv + sc.rec[y*blockSize+x])
			}
		}
	}
}
