// Package netem provides the small network-emulation shims the live
// (real-socket) transports use to recreate open-WiFi conditions on
// loopback: Bernoulli packet loss filters for the receiver's and
// eavesdropper's reception, and a token-bucket pacer that imposes a
// WiFi-like bottleneck rate on a byte stream.
package netem

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/stats"
)

// Filter drops packets with a fixed probability, emulating residual
// channel loss at one station. It is safe for concurrent use.
type Filter struct {
	mu   sync.Mutex
	loss float64
	rng  *stats.RNG

	dropped, passed int
}

// NewFilter builds a filter with the given loss probability in [0,1).
func NewFilter(loss float64, seed uint64) (*Filter, error) {
	if loss < 0 || loss >= 1 {
		return nil, fmt.Errorf("netem: loss %g out of [0,1)", loss)
	}
	return &Filter{loss: loss, rng: stats.NewRNG(seed)}, nil
}

// Drop decides the fate of one packet.
func (f *Filter) Drop() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Bool(f.loss) {
		f.dropped++
		mDropsFilter.Inc()
		return true
	}
	f.passed++
	return false
}

// Counts returns how many packets were dropped and passed so far.
func (f *Filter) Counts() (dropped, passed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.passed
}

// Pacer rate-limits a byte stream to the given bytes/second, emulating the
// WiFi bottleneck for live TCP transfers. A zero rate means unlimited.
type Pacer struct {
	mu      sync.Mutex
	rate    float64
	nextOK  time.Time
	sleepFn func(time.Duration)
}

// NewPacer builds a pacer at the given rate in bytes/second.
func NewPacer(bytesPerSecond float64) (*Pacer, error) {
	if bytesPerSecond < 0 {
		return nil, fmt.Errorf("netem: negative rate")
	}
	return &Pacer{rate: bytesPerSecond, sleepFn: time.Sleep}, nil
}

// SetRate changes the rate at runtime (bandwidth churn on a flapping
// link). Already-granted send times are unaffected, but a Wait in
// progress grants at most paceChunk bytes per ledger step, so the new
// rate takes effect within one MTU-sized chunk rather than after the
// whole in-flight sleep finishes at the old rate. A zero rate means
// unlimited.
func (p *Pacer) SetRate(bytesPerSecond float64) error {
	if bytesPerSecond < 0 {
		return fmt.Errorf("netem: negative rate")
	}
	p.mu.Lock()
	p.rate = bytesPerSecond
	p.mu.Unlock()
	mPacerRate.Set(int64(bytesPerSecond))
	return nil
}

// Rate returns the current rate in bytes/second.
func (p *Pacer) Rate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rate
}

// paceChunk bounds the bytes granted per ledger step, roughly one
// Ethernet MTU. Waits larger than this are split so the current rate is
// re-read between chunks: without the split, a large Wait at a slow
// rate computes its whole sleep up front and a concurrent SetRate (the
// flapping-link scenario) would not take effect until that sleep ends.
const paceChunk = 1500

// Wait blocks until n more bytes may be sent. Long waits are chunked at
// paceChunk granularity so a concurrent SetRate applies mid-wait.
func (p *Pacer) Wait(n int) {
	for n > 0 {
		c := n
		if c > paceChunk {
			c = paceChunk
		}
		n -= c
		if !p.waitChunk(c) {
			return // unlimited: the remaining chunks cost nothing
		}
	}
}

// waitChunk reserves one ledger slot for n bytes at the current rate
// and sleeps until it is due. It reports false when the pacer is
// unlimited so Wait can skip the remaining chunks.
func (p *Pacer) waitChunk(n int) bool {
	p.mu.Lock()
	if p.rate == 0 {
		p.mu.Unlock()
		return false
	}
	now := time.Now() //lint:allow walltime real-socket feature: the pacer shapes live connections on the wall clock
	if p.nextOK.Before(now) {
		p.nextOK = now
	}
	due := p.nextOK
	p.nextOK = p.nextOK.Add(time.Duration(float64(n) / p.rate * float64(time.Second)))
	p.mu.Unlock()
	if d := time.Until(due); d > 0 { //lint:allow walltime real-socket feature: the pacer shapes live connections on the wall clock
		mPacerSleepSeconds.Add(d.Seconds())
		p.sleepFn(d)
	}
	return true
}
