package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/netem"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
)

// The live backend mirrors the simulated pipeline over real sockets: the
// sender unicasts every RTP packet to the legitimate receiver and to the
// eavesdropper's socket (standing in for the broadcast nature of open
// WiFi, where tcpdump on a nearby device captures the same frames), each
// endpoint applies its own netem loss filter, and only the receiver can
// decrypt marked payloads.

// LiveSendReport summarises a live transmission.
type LiveSendReport struct {
	Packets    int
	Encrypted  int
	Bytes      int
	Elapsed    time.Duration
	CryptoTime time.Duration // wall time spent inside the cipher
}

// LiveUDPSend streams the session's packets to the receiver and
// eavesdropper addresses. With pace=true packets are released on the
// frame-capture schedule (real-time streaming); otherwise back to back
// (file upload).
func LiveUDPSend(s Session, rxAddr, evAddr string, pace bool) (LiveSendReport, error) {
	var rep LiveSendReport
	if err := s.Validate(); err != nil {
		return rep, err
	}
	cipher, err := vcrypt.NewCipher(s.Policy.Alg, s.Key)
	if err != nil {
		return rep, err
	}
	selector, err := vcrypt.NewSelector(s.Policy)
	if err != nil {
		return rep, err
	}
	rxConn, err := net.Dial("udp", rxAddr)
	if err != nil {
		return rep, fmt.Errorf("transport: dial receiver: %w", err)
	}
	defer rxConn.Close()
	var evConn net.Conn
	if evAddr != "" {
		evConn, err = net.Dial("udp", evAddr)
		if err != nil {
			return rep, fmt.Errorf("transport: dial eavesdropper: %w", err)
		}
		defer evConn.Close()
	}
	seqr := rtp.NewSequencer(0x7561) // arbitrary SSRC
	start := time.Now()
	seq := 0
	for fi, ef := range s.Encoded {
		if pace {
			due := start.Add(time.Duration(float64(fi) / s.FPS * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		pkts, err := codec.Packetize(ef, s.MTU)
		if err != nil {
			return rep, err
		}
		for _, pkt := range pkts {
			payload := append([]byte(nil), pkt.Payload...)
			if s.PadToMTU && len(payload) < s.MTU {
				payload = append(payload, make([]byte, s.MTU-len(payload))...)
			}
			encrypted := selector.ShouldEncrypt(pkt.IsIFrame())
			if encrypted {
				t0 := time.Now()
				cipher.EncryptPacket(uint64(seq), payload[:s.Policy.EncryptSpan(len(payload))])
				rep.CryptoTime += time.Since(t0)
				rep.Encrypted++
			}
			out := seqr.Next(payload, float64(fi)/s.FPS, encrypted).Marshal()
			if _, err := rxConn.Write(out); err != nil {
				return rep, fmt.Errorf("transport: send to receiver: %w", err)
			}
			if evConn != nil {
				// Broadcast overhear: the same datagram reaches the
				// eavesdropper's capture socket.
				if _, err := evConn.Write(out); err != nil {
					return rep, fmt.Errorf("transport: send to eavesdropper: %w", err)
				}
			}
			rep.Packets++
			rep.Bytes += len(out)
			seq++
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// LiveReceiver captures RTP packets on a UDP socket, applies a loss
// filter, decrypts marked payloads when it has the key (the legitimate
// receiver) or discards them as erasures when it does not (the
// eavesdropper), and reassembles frames.
type LiveReceiver struct {
	conn   *net.UDPConn
	filter *netem.Filter
	cipher *vcrypt.Cipher // nil for the eavesdropper

	mu       sync.Mutex
	asm      *codec.Reassembler
	received int
	captured int
	closed   bool
	done     chan struct{}
	hdrOnly  int
}

// SetHeaderOnlyBytes tells the receiver the sender uses a header-only
// policy encrypting just the first n bytes of each marked payload
// (0 = whole payload). Must match the sender's Policy.HeaderOnlyBytes.
func (r *LiveReceiver) SetHeaderOnlyBytes(n int) {
	r.mu.Lock()
	r.hdrOnly = n
	r.mu.Unlock()
}

// NewLiveReceiver opens a listening socket. Pass a nil key to create an
// eavesdropper (marked packets become erasures). addr may use port 0.
func NewLiveReceiver(cfg codec.Config, alg vcrypt.Algorithm, key []byte, addr string, loss float64, seed uint64) (*LiveReceiver, error) {
	asm, err := codec.NewReassembler(cfg)
	if err != nil {
		return nil, err
	}
	filter, err := netem.NewFilter(loss, seed)
	if err != nil {
		return nil, err
	}
	var cipher *vcrypt.Cipher
	if key != nil {
		cipher, err = vcrypt.NewCipher(alg, key)
		if err != nil {
			return nil, err
		}
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	r := &LiveReceiver{conn: conn, filter: filter, cipher: cipher, asm: asm, done: make(chan struct{})}
	go r.loop()
	return r, nil
}

// Addr returns the bound address to hand to the sender.
func (r *LiveReceiver) Addr() string { return r.conn.LocalAddr().String() }

func (r *LiveReceiver) loop() {
	defer close(r.done)
	buf := make([]byte, 65536)
	// rtpSeq tracks the RTP 16-bit sequence with epoch extension so the
	// cipher IV matches the sender's 64-bit counter.
	var epoch uint64
	var lastSeq uint16
	first := true
	for {
		n, _, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pkt, err := rtp.Parse(buf[:n])
		if err != nil {
			continue
		}
		if r.filter.Drop() {
			continue
		}
		if !first && pkt.Sequence < lastSeq && lastSeq-pkt.Sequence > 32768 {
			epoch += 1 << 16
		}
		lastSeq = pkt.Sequence
		first = false
		seq64 := epoch | uint64(pkt.Sequence)
		payload := append([]byte(nil), pkt.Payload...)
		r.mu.Lock()
		r.captured++
		if pkt.Encrypted() {
			if r.cipher == nil {
				r.mu.Unlock()
				continue // eavesdropper: erasure
			}
			span := len(payload)
			if r.hdrOnly > 0 && r.hdrOnly < span {
				span = r.hdrOnly
			}
			r.cipher.DecryptPacket(seq64, payload[:span])
		}
		if err := r.asm.Add(payload); err == nil {
			r.received++
		}
		r.mu.Unlock()
	}
}

// WaitForPackets blocks until the receiver has captured at least n
// packets or the timeout elapses.
func (r *LiveReceiver) WaitForPackets(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		r.mu.Lock()
		got := r.captured
		r.mu.Unlock()
		if got >= n {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("transport: timed out waiting for packets")
}

// Frames returns the reassembled (possibly partial) encoded frames.
func (r *LiveReceiver) Frames(total int) []*codec.EncodedFrame {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.asm.Frames(total)
}

// Stats returns (captured, usable) packet counts.
func (r *LiveReceiver) Stats() (captured, usable int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.captured, r.received
}

// Close shuts the socket down.
func (r *LiveReceiver) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.conn.Close()
	<-r.done
	return err
}
