package video

// This file implements the AForge-style motion detector the paper uses to
// "dynamically categorize the motion level in different parts of the video
// clip" (Section 6.1). AForge's two-frame difference detector thresholds
// the per-pixel luma difference and reports the fraction of changed pixels;
// we reproduce that and map the score to the low/medium/high classes of
// Fig. 2.

// MotionThreshold is the luma difference (out of 255) above which a pixel
// counts as moving; AForge's default is 15.
const MotionThreshold = 15

// MotionScore returns the fraction of luma pixels whose difference between
// the two frames exceeds MotionThreshold.
func MotionScore(prev, cur *Frame) float64 {
	if !prev.SameSize(cur) {
		panic("video: MotionScore frames differ in size")
	}
	changed := 0
	for i := range cur.Y {
		d := int(cur.Y[i]) - int(prev.Y[i])
		if d < 0 {
			d = -d
		}
		if d > MotionThreshold {
			changed++
		}
	}
	return float64(changed) / float64(len(cur.Y))
}

// SequenceMotionScore averages MotionScore over consecutive frame pairs.
func SequenceMotionScore(frames []*Frame) float64 {
	if len(frames) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(frames); i++ {
		sum += MotionScore(frames[i-1], frames[i])
	}
	return sum / float64(len(frames)-1)
}

// Class boundaries for the mean motion score, tuned on the synthetic
// generator so that DefaultScene(MotionLow/Medium/High) land in their own
// classes with a wide margin.
const (
	lowMotionCutoff  = 0.06
	highMotionCutoff = 0.20
)

// ClassifyMotion maps a mean motion score to the paper's three content
// classes.
func ClassifyMotion(score float64) MotionLevel {
	switch {
	case score < lowMotionCutoff:
		return MotionLow
	case score < highMotionCutoff:
		return MotionMedium
	default:
		return MotionHigh
	}
}

// AnalyzeMotion classifies a clip.
func AnalyzeMotion(frames []*Frame) MotionLevel {
	return ClassifyMotion(SequenceMotionScore(frames))
}
