package netem

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestFilterLossRate(t *testing.T) {
	f, err := NewFilter(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 40000
	drops := 0
	for i := 0; i < n; i++ {
		if f.Drop() {
			drops++
		}
	}
	if frac := float64(drops) / float64(n); math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("drop rate %v want 0.25", frac)
	}
	d, p := f.Counts()
	if d+p != n || d != drops {
		t.Fatalf("counts (%d,%d)", d, p)
	}
}

func TestFilterZeroLoss(t *testing.T) {
	f, _ := NewFilter(0, 1)
	for i := 0; i < 100; i++ {
		if f.Drop() {
			t.Fatal("zero-loss filter dropped a packet")
		}
	}
}

func TestFilterRejectsBadLoss(t *testing.T) {
	if _, err := NewFilter(1, 1); err == nil {
		t.Fatal("loss=1 should fail")
	}
	if _, err := NewFilter(-0.1, 1); err == nil {
		t.Fatal("negative loss should fail")
	}
}

func TestFilterConcurrentSafe(t *testing.T) {
	f, _ := NewFilter(0.5, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Drop()
			}
		}()
	}
	wg.Wait()
	d, p := f.Counts()
	if d+p != 8000 {
		t.Fatalf("lost updates: %d", d+p)
	}
}

func TestPacerThrottles(t *testing.T) {
	p, err := NewPacer(100e3) // 100 kB/s
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 10; i++ {
		p.Wait(1000) // 10 kB total -> >= ~90 ms after the first chunk
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("pacer too fast: %v", el)
	}
}

func TestPacerUnlimited(t *testing.T) {
	p, _ := NewPacer(0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		p.Wait(1 << 20)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("unlimited pacer slept: %v", el)
	}
}

func TestPacerRejectsNegative(t *testing.T) {
	if _, err := NewPacer(-1); err == nil {
		t.Fatal("negative rate should fail")
	}
}
