package codec

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/video"
)

func benchBlock() *[64]float64 {
	rng := rand.New(rand.NewSource(5))
	var b [64]float64
	for i := range b {
		b[i] = rng.Float64()*255 - 128
	}
	return &b
}

func BenchmarkFDCT8(b *testing.B) {
	in := benchBlock()
	var out [64]float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fdct8(in, &out)
	}
}

func BenchmarkIDCT8(b *testing.B) {
	in := benchBlock()
	var out [64]float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idct8(in, &out)
	}
}

func benchFrames(b *testing.B, n int) []*video.Frame {
	b.Helper()
	return video.Generate(video.SceneConfig{
		W: video.CIFWidth, H: video.CIFHeight, Frames: n,
		Motion: video.MotionMedium, Seed: 9,
	})
}

func BenchmarkMotionSearch(b *testing.B) {
	clip := benchFrames(b, 2)
	cfg := DefaultConfig(30)
	src, ref := clip[1], clip[0]
	starts := [][2]int{{1, 0}, {0, 1}}
	cols, rows := cfg.MBCols(), cfg.MBRows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb := i % (cols * rows)
		motionSearch(src, ref, (mb%cols)*mbSize, (mb/cols)*mbSize, cfg, starts)
	}
}

// BenchmarkEncodeMetricsOff/On measure the instrumentation tax on the
// hottest path (P-frame encode). Off is the shipping default — the only
// cost is one atomic load per row batch; On adds the row/frame counter
// and histogram updates. scripts/bench.sh compares the two and fails
// the PR gate if On costs more than a couple of percent.
func BenchmarkEncodeMetricsOff(b *testing.B) { benchEncodeMetrics(b, false) }
func BenchmarkEncodeMetricsOn(b *testing.B)  { benchEncodeMetrics(b, true) }

func benchEncodeMetrics(b *testing.B, enabled bool) {
	clip := benchFrames(b, 2)
	cfg := DefaultConfig(30)
	cfg.Workers = 1 // serial: the per-row accounting dominates least here, making the tax easiest to see
	enc, err := NewEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := enc.Encode(clip[0]); err != nil {
		b.Fatal(err)
	}
	obs.SetEnabled(enabled)
	defer obs.SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.encodeAs(clip[1], PFrame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeFrameParallel times one P-frame through the row
// pipeline at the configured worker count; the serial variant is the
// Workers=1 baseline for the same frame.
func BenchmarkEncodeFrameParallel(b *testing.B) {
	par := runtime.NumCPU()
	if par < 2 {
		// Still exercise the wavefront machinery on single-CPU hosts.
		par = 2
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"workers", par}} {
		b.Run(bc.name, func(b *testing.B) {
			clip := benchFrames(b, 2)
			cfg := DefaultConfig(30)
			cfg.Workers = bc.workers
			enc, err := NewEncoder(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := enc.Encode(clip[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enc.encodeAs(clip[1], PFrame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
