package netem

import (
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"
)

func TestBurstyLossMatchesParameters(t *testing.T) {
	for _, tc := range []struct {
		loss, burst float64
		seed        uint64
	}{
		{0.05, 3, 1},
		{0.15, 5, 2},
		{0.30, 8, 3},
	} {
		g, err := NewBurstyLoss(tc.loss, tc.burst, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		n := 300000
		for i := 0; i < n; i++ {
			g.Drop()
		}
		if got := g.LossRate(); math.Abs(got-tc.loss) > 0.12*tc.loss+0.005 {
			t.Errorf("loss=%g burst=%g: empirical loss %g", tc.loss, tc.burst, got)
		}
		if got := g.MeanBurstLength(); math.Abs(got-tc.burst) > 0.12*tc.burst {
			t.Errorf("loss=%g burst=%g: empirical burst %g", tc.loss, tc.burst, got)
		}
		d, p := g.Counts()
		if d+p != n {
			t.Errorf("counts %d+%d != %d", d, p, n)
		}
	}
}

func TestBurstyLossIsBurstier(t *testing.T) {
	// Same loss rate, but bursts of 6 must yield far longer drop runs
	// than i.i.d. loss (mean run 1/(1-p) ≈ 1.1 at 10% loss).
	g, err := NewBurstyLoss(0.1, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		g.Drop()
	}
	if got := g.MeanBurstLength(); got < 3 {
		t.Fatalf("bursty channel mean run %g, want clearly above i.i.d.'s ~1.1", got)
	}
}

func TestBurstyLossDeterministic(t *testing.T) {
	a, _ := NewBurstyLoss(0.2, 4, 42)
	b, _ := NewBurstyLoss(0.2, 4, 42)
	for i := 0; i < 10000; i++ {
		if a.Drop() != b.Drop() {
			t.Fatalf("seeded channels diverged at packet %d", i)
		}
	}
}

func TestBurstyLossRejectsBadParams(t *testing.T) {
	if _, err := NewBurstyLoss(1, 3, 1); err == nil {
		t.Fatal("loss=1 should fail")
	}
	if _, err := NewBurstyLoss(0.1, 0.5, 1); err == nil {
		t.Fatal("burst<1 should fail")
	}
	if _, err := NewGilbertElliott(0, 0.5, 0, 1, 1); err == nil {
		t.Fatal("pGB=0 should fail")
	}
}

func TestGilbertElliottConcurrentSafe(t *testing.T) {
	g, err := NewBurstyLoss(0.2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.DropSeq(uint64(i))
			}
		}()
	}
	wg.Wait()
	if d, p := g.Counts(); d+p != 8000 {
		t.Fatalf("lost updates: %d", d+p)
	}
}

func TestSeqBurstDropsTargetsOnce(t *testing.T) {
	b := NewSeqBurst(10, 5)
	for seq := uint64(0); seq < 20; seq++ {
		want := seq >= 10 && seq < 15
		if got := b.DropSeq(seq); got != want {
			t.Fatalf("seq %d dropped=%v want %v", seq, got, want)
		}
	}
	// Retransmissions of the burst pass.
	for seq := uint64(10); seq < 15; seq++ {
		if b.DropSeq(seq) {
			t.Fatalf("retransmitted seq %d dropped again", seq)
		}
	}
	if b.Dropped() != 5 {
		t.Fatalf("dropped %d targets, want 5", b.Dropped())
	}
}

func TestOutageScheduleWindows(t *testing.T) {
	o, err := NewOutageSchedule(
		Window{Start: 100 * time.Millisecond, End: 200 * time.Millisecond},
		Window{Start: 500 * time.Millisecond, End: 600 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	// 100% inside, 0% outside: sample the whole timeline at 1 ms steps.
	for ms := 0; ms < 700; ms++ {
		el := time.Duration(ms) * time.Millisecond
		inside := (ms >= 100 && ms < 200) || (ms >= 500 && ms < 600)
		if got := o.ActiveAt(el); got != inside {
			t.Fatalf("at %v active=%v want %v", el, got, inside)
		}
	}
}

func TestOutageScheduleRejectsBadWindow(t *testing.T) {
	if _, err := NewOutageSchedule(Window{Start: 5, End: 5}); err == nil {
		t.Fatal("empty window should fail")
	}
	if _, err := NewOutageSchedule(Window{Start: -1, End: 5}); err == nil {
		t.Fatal("negative start should fail")
	}
}

func TestConditionerDeterministicCounts(t *testing.T) {
	mk := func() *Conditioner {
		c, err := NewConditioner(ConditionerConfig{
			DelayMean:   time.Millisecond,
			DelayJitter: time.Millisecond,
			DupProb:     0.1,
			Seed:        5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	var dupsA int
	for seq := uint64(0); seq < 5000; seq++ {
		ia, ib := a.Next(seq), b.Next(seq)
		if ia != ib {
			t.Fatalf("seeded conditioners diverged at %d: %+v vs %+v", seq, ia, ib)
		}
		if ia.Delay < 0 {
			t.Fatalf("negative delay %v", ia.Delay)
		}
		dupsA += ia.Duplicates
	}
	if frac := float64(dupsA) / 5000; math.Abs(frac-0.11) > 0.03 { // ~p/(1-p) with the chain cap
		t.Fatalf("duplication fraction %g", frac)
	}
	if d, dup := a.Stats(); d != 0 || dup != dupsA {
		t.Fatalf("stats (%d,%d) want (0,%d)", d, dup, dupsA)
	}
}

func TestConditionerAppliesLoss(t *testing.T) {
	f, _ := NewFilter(0.5, 3)
	c, err := NewConditioner(ConditionerConfig{Loss: f, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for seq := uint64(0); seq < 2000; seq++ {
		if c.Next(seq).Drop {
			drops++
		}
	}
	if drops < 800 || drops > 1200 {
		t.Fatalf("drops %d with 50%% loss", drops)
	}
}

func TestPacerSetRate(t *testing.T) {
	p, err := NewPacer(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRate(-1); err == nil {
		t.Fatal("negative rate should fail")
	}
	if err := p.SetRate(100e3); err != nil {
		t.Fatal(err)
	}
	if p.Rate() != 100e3 {
		t.Fatalf("rate %g", p.Rate())
	}
	start := time.Now()
	for i := 0; i < 10; i++ {
		p.Wait(1000)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("churned pacer too fast: %v", el)
	}
	// Back to unlimited: no further sleeping.
	if err := p.SetRate(0); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	for i := 0; i < 100; i++ {
		p.Wait(1 << 20)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("unlimited pacer slept: %v", el)
	}
}

// TestPacerSetRateAppliesMidWait pins the flapping-link behaviour: a
// rate change must take effect within one paceChunk of an in-flight
// Wait, not after the whole pre-computed sleep at the old rate. At
// 20 kB/s the 100 kB wait below would take ~5 s; raising the rate
// 100 ms in must let it finish almost immediately.
func TestPacerSetRateAppliesMidWait(t *testing.T) {
	p, err := NewPacer(20e3)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		p.Wait(100_000)
		close(done)
	}()
	time.Sleep(100 * time.Millisecond)
	if err := p.SetRate(50e6); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait kept sleeping at the old rate after SetRate")
	}
	if el := time.Since(start); el < 90*time.Millisecond {
		t.Fatalf("wait finished in %v, faster than the pre-flap rate allows", el)
	}
}

func TestFlakyProxyRelaysAndCuts(t *testing.T) {
	// Backend echoes one line then closes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) //nolint:errcheck // echo until peer closes
			}(c)
		}
	}()

	p, err := NewFlakyProxy(ln.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Clean relay round trip.
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echoed %q", got)
	}
	c.Close()

	// Cut after 10 bytes: the connection dies mid-transfer and a
	// blackout refuses the next attempt.
	p.SetBlackout(150 * time.Millisecond)
	p.SetCutAfter(10)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Write(make([]byte, 64)) //nolint:errcheck // may already be severed
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	n := 0
	for n < 64 {
		m, err := c2.Read(buf[n:])
		n += m
		if err != nil {
			break
		}
	}
	if n > 10 {
		t.Fatalf("cut connection relayed %d bytes, want <= 10", n)
	}

	// During the blackout new connections are refused or die unreplied.
	c3, err := net.Dial("tcp", p.Addr())
	if err == nil {
		c3.SetReadDeadline(time.Now().Add(time.Second))
		c3.Write([]byte("x")) //nolint:errcheck // probing a dead link
		if _, err := c3.Read(buf); err == nil {
			t.Fatal("blackout relay answered")
		}
		c3.Close()
	}

	// After the blackout the link heals.
	time.Sleep(180 * time.Millisecond)
	c4, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c4.Close()
	if _, err := c4.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c4, got); err != nil {
		t.Fatalf("healed link still broken: %v", err)
	}
	if _, severed := p.Stats(); severed == 0 {
		t.Fatal("no severed connection recorded")
	}
}
