package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("Mul mismatch:\n%v want\n%v", c, want)
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, -1, 0}, {0.5, 3, 7}, {-2, 1, 4}})
	id := Identity(3)
	if a.Mul(id).MaxAbsDiff(a) > 1e-12 || id.Mul(a).MaxAbsDiff(a) > 1e-12 {
		t.Fatal("identity multiplication changed the matrix")
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{4, 3}, {2, 1}})
	if a.Add(b).MaxAbsDiff(MatrixFromRows([][]float64{{5, 5}, {5, 5}})) > 0 {
		t.Fatal("Add wrong")
	}
	if a.Sub(a).MaxAbsDiff(NewMatrix(2, 2)) > 0 {
		t.Fatal("Sub wrong")
	}
	if a.Scale(2).MaxAbsDiff(MatrixFromRows([][]float64{{2, 4}, {6, 8}})) > 0 {
		t.Fatal("Scale wrong")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := a.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %v want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if a.Mul(inv).MaxAbsDiff(Identity(3)) > 1e-10 {
		t.Fatalf("A*A^-1 != I:\n%v", a.Mul(inv))
	}
}

func TestInverseSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

// Property: for random well-conditioned matrices, Solve(A, A*x) recovers x.
func TestSolveRecoversProperty(t *testing.T) {
	rng := NewRNG(42)
	f := func(seed uint64) bool {
		r := NewRNG(seed ^ rng.Uint64())
		n := 2 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Float64()*2-1)
			}
			// Diagonal dominance keeps the system well conditioned.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*10 - 5
		}
		b := a.MulVec(x)
		got, err := a.Solve(b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVecMulMulVecConsistency(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := []float64{1, 1}
	got := a.VecMul(v)
	want := []float64{5, 7, 9}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("VecMul[%d] = %v want %v", i, got[i], want[i])
		}
	}
	u := []float64{1, 0, -1}
	got2 := a.MulVec(u)
	want2 := []float64{-2, -2}
	for i := range want2 {
		if !almostEqual(got2[i], want2[i], 1e-12) {
			t.Fatalf("MulVec[%d] = %v want %v", i, got2[i], want2[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("bad transpose:\n%v", at)
	}
}

func TestStationaryVectorCTMC(t *testing.T) {
	// Two-state generator with rates p1=2 (1→2), p2=3 (2→1).
	// π = (p2, p1)/(p1+p2) = (0.6, 0.4) per Eq. (2) of the paper.
	q := MatrixFromRows([][]float64{{-2, 2}, {3, -3}})
	pi, err := StationaryVector(q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pi[0], 0.6, 1e-12) || !almostEqual(pi[1], 0.4, 1e-12) {
		t.Fatalf("pi = %v want [0.6 0.4]", pi)
	}
}

func TestStationaryVectorDTMC(t *testing.T) {
	p := MatrixFromRows([][]float64{{0.9, 0.1}, {0.5, 0.5}})
	pi, err := StationaryVector(p)
	if err != nil {
		t.Fatal(err)
	}
	// Solve: pi0*0.9 + pi1*0.5 = pi0 → pi1*0.5 = 0.1 pi0 → pi0 = 5 pi1.
	if !almostEqual(pi[0], 5.0/6, 1e-12) || !almostEqual(pi[1], 1.0/6, 1e-12) {
		t.Fatalf("pi = %v want [5/6 1/6]", pi)
	}
}

func TestStationaryVectorInvariance(t *testing.T) {
	q := MatrixFromRows([][]float64{
		{-1.5, 1.0, 0.5},
		{0.2, -0.7, 0.5},
		{0.9, 0.1, -1.0},
	})
	pi, err := StationaryVector(q)
	if err != nil {
		t.Fatal(err)
	}
	res := q.VecMul(pi)
	for i, v := range res {
		if !almostEqual(v, 0, 1e-10) {
			t.Fatalf("piQ[%d] = %v, want 0", i, v)
		}
	}
}

func TestSolveLeft(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 1}, {0, 3}})
	// x * A = b with x = (1, 2): b = (2, 7).
	x, err := a.SolveLeft([]float64{2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestMatrixString(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}})
	if got := a.String(); got != "[1 2]\n" {
		t.Fatalf("String() = %q", got)
	}
}
