// Package bufown proves the linear-ownership discipline of the
// zero-copy wire path: every codec.WirePacket acquired from
// codec.PacketizeInto (or a wrapper returning its packets) must reach
// exactly one release — BufPool.Put or WirePacket.Retain — on every
// path after its final use. The pass reports
//
//   - leaks: a packet that may reach the function exit, or be re-bound
//     on a loop back edge, while still owning its pooled buffer;
//   - double-Put: a Put of a packet some path already released;
//   - use-after-Put: any use of a packet after a Put may have recycled
//     its buffer;
//   - unannotated retains: every WirePacket.Retain call site must carry
//     a //lint:retain(reason) marker on its line or the line above, so
//     each sanctioned escape from the pool (the I-frame retransmit
//     queue, the resumable segment store) names its justification.
//
// The analysis is a forward may-analysis over the lintkit CFG. The
// tracked objects are element pointers bound as p := &wps[i] where wps
// was assigned from PacketizeInto; each carries a state set drawn from
// {owned, released, escaped}. Put moves owned to released (and is a
// no-op on escaped packets, matching the runtime contract of Put after
// Retain); Retain moves any live state to escaped; passing the pointer
// to a module-local callee whose bottom-up summary consumes that
// parameter releases it (ownership transfer through calls, mirroring
// the taint engine's TaintSummary); passing it anywhere opaque — a
// non-local call, a return, a store — escapes it conservatively.
//
// Soundness caveats (documented in DESIGN.md): the slice returned by
// PacketizeInto is not tracked as a whole, so abandoning a batch before
// binding element pointers is invisible; module-local callees that
// store a borrowed pointer without consuming it are treated as borrows;
// function literals are separate bodies, and a packet captured by a
// literal is treated as escaped in the enclosing body.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages are the layers that drive the pooled wire path.
var DefaultPackages = []string{
	"internal/transport",
}

// Analyzer is the bufown pass.
var Analyzer = &lintkit.Analyzer{
	Name: "bufown",
	Doc: "Proves linear ownership of pooled codec.WirePacket buffers: " +
		"every packet acquired from PacketizeInto reaches exactly one " +
		"BufPool.Put or annotated WirePacket.Retain on every path; " +
		"reports leaks, double-Put, use-after-Put and unannotated " +
		"retains. Ownership transfer through module-local calls is " +
		"resolved with bottom-up consumes/returns summaries.",
	Packages: DefaultPackages,
	Run:      run,
}

var (
	packetizeInto = lintkit.FuncMatch{Path: "internal/codec", Name: "PacketizeInto"}
	poolPut       = lintkit.FuncMatch{Path: "internal/codec", Recv: "BufPool", Name: "Put"}
	pktRetain     = lintkit.FuncMatch{Path: "internal/codec", Recv: "WirePacket", Name: "Retain"}
)

func run(pass *lintkit.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	sums := ownSummaries(pass.Prog)
	checkRetainAnnotations(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, sums, fd.Body)
			// Every literal is its own body: it generally runs on
			// another goroutine (live_http's upload loop) or at defer
			// time, where the enclosing bindings do not apply.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, sums, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkRetainAnnotations enforces the //lint:retain(reason) marker on
// every WirePacket.Retain call site: the sanctioned escapes from the
// pool must each name their justification where the escape happens.
func checkRetainAnnotations(pass *lintkit.Pass) {
	for _, f := range pass.Files {
		annotated := retainMarkerLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintkit.FuncForCall(pass.TypesInfo, call)
			if fn == nil || !pktRetain.Matches(fn) {
				return true
			}
			line := pass.Fset.Position(call.Pos()).Line
			if !annotated[line] && !annotated[line-1] {
				pass.Reportf(call.Pos(), "WirePacket.Retain without a //lint:retain(reason) annotation on this line or the line above")
			}
			return true
		})
	}
}

// retainMarkerLines collects the lines of f carrying a well-formed
// //lint:retain(reason) marker with a non-empty reason.
func retainMarkerLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "lint:retain(")
			if !ok {
				continue
			}
			reason, _, ok := strings.Cut(rest, ")")
			if !ok || strings.TrimSpace(reason) == "" {
				continue
			}
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// Ownership states. A fact holds the may-set per tracked packet.
const (
	stOwned    uint8 = 1 << iota // holds a pooled buffer not yet released
	stReleased                   // a Put may have recycled the buffer
	stEscaped                    // retained or moved out; never rejoins the pool here
)

type pktState struct {
	states  uint8
	acquire token.Pos // binding that conferred ownership
	release token.Pos // Put that set stReleased (diagnostics)
}

type bufFact map[types.Object]pktState

// ownFlow implements the ownership analysis for one body.
type ownFlow struct {
	pass   *lintkit.Pass
	sums   map[*types.Func]*ownSummary
	report bool
	// srcVars are the slice variables assigned from PacketizeInto (or
	// a returns-owned wrapper) somewhere in this body.
	srcVars map[types.Object]bool
	// candidates are the element-pointer variables bound as &src[i];
	// the flow facts track exactly these.
	candidates map[types.Object]bool
}

func (p *ownFlow) EntryFact() lintkit.Fact { return bufFact{} }

func (p *ownFlow) Clone(f lintkit.Fact) lintkit.Fact {
	n := bufFact{}
	for k, v := range f.(bufFact) {
		n[k] = v
	}
	return n
}

func (p *ownFlow) Join(a, b lintkit.Fact) lintkit.Fact {
	x, y := a.(bufFact), b.(bufFact)
	for k, v := range y {
		o, ok := x[k]
		if !ok {
			x[k] = v
			continue
		}
		o.states |= v.states
		if v.acquire < o.acquire {
			o.acquire = v.acquire
		}
		if o.release == token.NoPos {
			o.release = v.release
		}
		x[k] = o
	}
	return x
}

func (p *ownFlow) Equal(a, b lintkit.Fact) bool {
	x, y := a.(bufFact), b.(bufFact)
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		o, ok := y[k]
		if !ok || o.states != v.states || o.acquire != v.acquire {
			return false
		}
	}
	return true
}

func (p *ownFlow) TransferEdge(e *lintkit.Edge, f lintkit.Fact) lintkit.Fact { return f }

func (p *ownFlow) Transfer(n ast.Node, f lintkit.Fact) lintkit.Fact {
	fact := f.(bufFact)
	if obj := p.bindingTarget(n); obj != nil {
		if old, ok := fact[obj]; ok && old.states&stOwned != 0 {
			if p.report {
				p.pass.Reportf(n.Pos(), "packet %s is re-bound while a previous packet may still own its pooled buffer (missing BufPool.Put or Retain before the loop back edge)", objName(obj))
			}
		}
		fact[obj] = pktState{states: stOwned, acquire: n.Pos()}
		return fact
	}
	for _, ev := range p.events(n) {
		st, ok := fact[ev.obj]
		if !ok {
			continue // not acquired on this path
		}
		switch ev.kind {
		case evUse:
			if st.states&stReleased != 0 && p.report {
				p.pass.Reportf(ev.pos, "use of packet %s after BufPool.Put may touch a recycled buffer (released at %s)", objName(ev.obj), p.pos(st.release))
			}
		case evConsume:
			if st.states&stReleased != 0 {
				if p.report {
					p.pass.Reportf(ev.pos, "double Put of packet %s (already released at %s)", objName(ev.obj), p.pos(st.release))
				}
			} else if st.states&stOwned != 0 {
				st.states = (st.states &^ stOwned) | stReleased
				st.release = ev.pos
			}
			fact[ev.obj] = st
		case evRetain:
			if st.states&stReleased != 0 && p.report {
				p.pass.Reportf(ev.pos, "Retain of packet %s after BufPool.Put (released at %s)", objName(ev.obj), p.pos(st.release))
			}
			st.states = stEscaped
			fact[ev.obj] = st
		case evEscape:
			if st.states&stReleased != 0 && p.report {
				p.pass.Reportf(ev.pos, "packet %s moved out of scope after BufPool.Put (released at %s)", objName(ev.obj), p.pos(st.release))
			}
			st.states = stEscaped
			fact[ev.obj] = st
		}
	}
	return fact
}

func (p *ownFlow) pos(pos token.Pos) string {
	pp := p.pass.Fset.Position(pos)
	return pp.String()
}

func objName(obj types.Object) string { return obj.Name() }

// bindingTarget recognizes the acquisition shape p := &src[i] (or a
// plain assignment of that form) and returns the bound object.
func (p *ownFlow) bindingTarget(n ast.Node) types.Object {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.objFor(id)
	if obj == nil || !p.candidates[obj] {
		return nil
	}
	if p.elementOfSource(as.Rhs[0]) {
		return obj
	}
	return nil
}

// elementOfSource reports whether e is &src[i] for a tracked source
// slice.
func (p *ownFlow) elementOfSource(e ast.Expr) bool {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	ix, ok := ast.Unparen(u.X).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.objFor(id)
	return obj != nil && p.srcVars[obj]
}

func (p *ownFlow) objFor(id *ast.Ident) types.Object {
	if obj := p.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.pass.TypesInfo.Defs[id]
}

type eventKind int

const (
	evUse eventKind = iota
	evConsume
	evRetain
	evEscape
)

type event struct {
	kind eventKind
	obj  types.Object
	pos  token.Pos
}

// events walks one CFG node in source order and classifies every
// appearance of a tracked packet pointer. It respects the CFG's
// decomposition: range headers contribute only their ranged expression,
// case clause headers only their guards, select headers nothing (comm
// statements live in the clause blocks), and deferred calls nothing at
// the defer site (the exit block replays the call expression, where the
// consume or escape is accounted once, on every path).
func (p *ownFlow) events(n ast.Node) []event {
	var evs []event
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal body is analyzed separately; a capture moves
			// the pointer beyond this body's view.
			ast.Inspect(n.Body, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if obj := p.objFor(id); obj != nil && p.candidates[obj] {
						evs = append(evs, event{kind: evEscape, obj: obj, pos: id.Pos()})
					}
				}
				return true
			})
			return
		case *ast.CallExpr:
			p.callEvents(n, &evs, walk)
			return
		case *ast.SelectorExpr:
			// Reading a field (pkt.Payload) or taking a method value
			// borrows the packet; the pointer itself does not move.
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := p.objFor(id); obj != nil && p.candidates[obj] {
					evs = append(evs, event{kind: evUse, obj: obj, pos: id.Pos()})
					return
				}
			}
			walk(n.X)
			return
		case *ast.Ident:
			// A bare tracked ident in any other position (assignment,
			// return, composite literal, send, comparison) moves or
			// copies the pointer: conservatively an escape.
			if obj := p.objFor(n); obj != nil && p.candidates[obj] {
				evs = append(evs, event{kind: evEscape, obj: obj, pos: n.Pos()})
			}
			return
		}
		// Generic node: recurse into children in source order.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return c == n
			}
			walk(c)
			return false
		})
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		walk(n.X)
	case *ast.CaseClause:
		for _, e := range n.List {
			walk(e)
		}
	case *ast.SelectStmt, *ast.DeferStmt:
		// Nothing: clause bodies and deferred calls are replayed in
		// their own blocks.
	case *ast.GoStmt:
		// The call runs on another goroutine: a packet handed to it is
		// beyond this body's view.
		for _, a := range n.Call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := p.objFor(id); obj != nil && p.candidates[obj] {
					evs = append(evs, event{kind: evEscape, obj: obj, pos: a.Pos()})
					continue
				}
			}
			walk(a)
		}
	default:
		walk(n)
	}
	return evs
}

// callEvents classifies the receiver and arguments of one call.
func (p *ownFlow) callEvents(call *ast.CallExpr, evs *[]event, walk func(ast.Node)) {
	fn := lintkit.FuncForCall(p.pass.TypesInfo, call)
	var sum *ownSummary
	if fn != nil {
		sum = p.sums[fn]
	}
	// Receiver of a method call.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := p.objFor(id); obj != nil && p.candidates[obj] {
				switch {
				case fn != nil && pktRetain.Matches(fn):
					*evs = append(*evs, event{kind: evRetain, obj: obj, pos: call.Pos()})
				case sum != nil && sum.consumes[recvIndex]:
					*evs = append(*evs, event{kind: evConsume, obj: obj, pos: call.Pos()})
				default:
					// WirePacket's own accessors (Wire, IsIFrame, the
					// embedded Packet methods) borrow the packet.
					*evs = append(*evs, event{kind: evUse, obj: obj, pos: call.Pos()})
				}
			} else {
				walk(sel.X)
			}
		} else {
			walk(sel.X)
		}
	}
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := p.objFor(id); obj != nil && p.candidates[obj] {
				switch {
				case fn != nil && poolPut.Matches(fn) && i == 0:
					*evs = append(*evs, event{kind: evConsume, obj: obj, pos: call.Pos()})
				case sum != nil && sum.consumes[i]:
					*evs = append(*evs, event{kind: evConsume, obj: obj, pos: call.Pos()})
				case fn != nil && p.pass.Prog.Source(fn) != nil:
					// Module-local callee that does not consume: a
					// borrow (caveat: stores inside the callee are
					// invisible).
					*evs = append(*evs, event{kind: evUse, obj: obj, pos: arg.Pos()})
				default:
					// Unknown callee (stdlib, function value): assume
					// it takes ownership.
					*evs = append(*evs, event{kind: evEscape, obj: obj, pos: arg.Pos()})
				}
				continue
			}
		}
		walk(arg)
	}
}

// checkBody solves the ownership analysis for one body, then reports in
// a single deterministic visit; finally every packet whose may-state
// still contains owned at the function exit is reported as a leak at
// its acquisition site.
func checkBody(pass *lintkit.Pass, sums map[*types.Func]*ownSummary, body *ast.BlockStmt) {
	p := &ownFlow{pass: pass, sums: sums}
	p.srcVars, p.candidates = scanBindings(pass, body)
	if len(p.candidates) == 0 {
		return
	}
	cfg := lintkit.BuildCFG(body)
	in := lintkit.Solve(cfg, p)
	p.report = true
	for _, b := range cfg.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		f = p.Clone(f).(bufFact)
		for _, n := range b.Nodes {
			f = p.Transfer(n, f).(bufFact)
		}
		if b == cfg.Exit {
			reportExitLeaks(pass, f.(bufFact))
		}
	}
}

func reportExitLeaks(pass *lintkit.Pass, f bufFact) {
	type leak struct {
		obj types.Object
		pos token.Pos
	}
	var leaks []leak
	for obj, st := range f {
		if st.states&stOwned != 0 {
			leaks = append(leaks, leak{obj, st.acquire})
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		pass.Reportf(l.pos, "packet %s may reach the function exit still owning its pooled buffer (no BufPool.Put or Retain on some path)", objName(l.obj))
	}
}

// scanBindings finds, flow-insensitively, the slice variables assigned
// from PacketizeInto (or a returns-owned wrapper) and the element
// pointers bound from them. Function literals are skipped: each is its
// own body with its own bindings.
func scanBindings(pass *lintkit.Pass, body *ast.BlockStmt) (srcVars, candidates map[types.Object]bool) {
	srcVars = make(map[types.Object]bool)
	candidates = make(map[types.Object]bool)
	sums := ownSummaries(pass.Prog)
	objFor := func(id *ast.Ident) types.Object {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[id]
	}
	skipLits := func(n ast.Node) bool {
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	}
	visit := func(f func(as *ast.AssignStmt)) {
		ast.Inspect(body, func(n ast.Node) bool {
			if !skipLits(n) && n != body {
				return false
			}
			if as, ok := n.(*ast.AssignStmt); ok {
				f(as)
			}
			return true
		})
	}
	// Pass 1: source slices.
	visit(func(as *ast.AssignStmt) {
		if len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := lintkit.FuncForCall(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		owned := packetizeInto.Matches(fn)
		if !owned {
			if s := sums[fn]; s != nil && s.returnsOwned {
				owned = true
			}
		}
		if !owned {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := objFor(id); obj != nil && isWirePacketSlice(obj.Type()) {
			srcVars[obj] = true
		}
	})
	// Pass 2: element pointers &src[i].
	visit(func(as *ast.AssignStmt) {
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		u, ok := ast.Unparen(as.Rhs[0]).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return
		}
		ix, ok := ast.Unparen(u.X).(*ast.IndexExpr)
		if !ok {
			return
		}
		sid, ok := ast.Unparen(ix.X).(*ast.Ident)
		if !ok {
			return
		}
		sobj := objFor(sid)
		if sobj == nil || !srcVars[sobj] {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := objFor(id); obj != nil {
			candidates[obj] = true
		}
	})
	return srcVars, candidates
}

// isWirePacketSlice reports whether t is []codec.WirePacket.
func isWirePacketSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	return ok && isWirePacket(sl.Elem())
}

func isWirePacket(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "WirePacket" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/codec" || strings.HasSuffix(path, "/internal/codec")
}

// recvIndex keys the receiver in an ownSummary's consumes map.
const recvIndex = -1

// ownSummary is the bottom-up ownership summary of one module-local
// function: which *WirePacket parameters it consumes (releases or
// retains on some path, directly or transitively) and whether its
// results carry fresh buffer ownership to the caller.
type ownSummary struct {
	consumes     map[int]bool
	returnsOwned bool
}

type ownCacheKey struct{}

// ownSummaries computes the ownership summaries for every module-local
// function, bottom-up over the call graph so wrappers compose (a helper
// that forwards to BufPool.Put consumes its parameter; a helper that
// forwards PacketizeInto's result returns owned packets).
func ownSummaries(prog *lintkit.Program) map[*types.Func]*ownSummary {
	v := prog.Cache(ownCacheKey{}, func() any {
		sums := make(map[*types.Func]*ownSummary)
		cg := lintkit.BuildCallGraph(prog)
		for _, scc := range cg.BottomUp() {
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					src := prog.Source(fn)
					if src == nil {
						continue
					}
					s := summarize(fn, src, sums)
					if old := sums[fn]; old == nil || !equalSummary(old, s) {
						sums[fn] = s
						changed = true
					}
				}
			}
		}
		return sums
	})
	return v.(map[*types.Func]*ownSummary)
}

func equalSummary(a, b *ownSummary) bool {
	if a.returnsOwned != b.returnsOwned || len(a.consumes) != len(b.consumes) {
		return false
	}
	for k := range a.consumes {
		if !b.consumes[k] {
			return false
		}
	}
	return true
}

// summarize computes one function's summary given the summaries so far.
func summarize(fn *types.Func, src *lintkit.FuncSource, sums map[*types.Func]*ownSummary) *ownSummary {
	s := &ownSummary{consumes: make(map[int]bool)}
	params := paramObjects(src)
	if len(params) > 0 {
		markConsumed := func(e ast.Expr) {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok {
				return
			}
			obj := src.Pkg.Info.Uses[id]
			if obj == nil {
				return
			}
			if idx, ok := params[obj]; ok {
				s.consumes[idx] = true
			}
		}
		ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintkit.FuncForCall(src.Pkg.Info, call)
			if callee == nil {
				return true
			}
			switch {
			case poolPut.Matches(callee):
				if len(call.Args) > 0 {
					markConsumed(call.Args[0])
				}
			case pktRetain.Matches(callee):
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					markConsumed(sel.X)
				}
			default:
				if cs := sums[callee]; cs != nil {
					for i, arg := range call.Args {
						if cs.consumes[i] {
							markConsumed(arg)
						}
					}
					if cs.consumes[recvIndex] {
						if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
							markConsumed(sel.X)
						}
					}
				}
			}
			return true
		})
	}
	s.returnsOwned = computeReturnsOwned(fn, src, sums)
	return s
}

// computeReturnsOwned reports whether fn's results hand fresh packet
// ownership to the caller: the signature returns []codec.WirePacket and
// the body reaches PacketizeInto (or a returns-owned callee).
func computeReturnsOwned(fn *types.Func, src *lintkit.FuncSource, sums map[*types.Func]*ownSummary) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	returnsSlice := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isWirePacketSlice(sig.Results().At(i).Type()) {
			returnsSlice = true
		}
	}
	if !returnsSlice {
		return false
	}
	found := false
	ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintkit.FuncForCall(src.Pkg.Info, call)
		if callee == nil {
			return true
		}
		if packetizeInto.Matches(callee) {
			found = true
			return false
		}
		if cs := sums[callee]; cs != nil && cs.returnsOwned {
			found = true
			return false
		}
		return true
	})
	return found
}

// paramObjects maps fn's receiver and parameter objects to their
// consumes-index (receiver = recvIndex, parameters 0-based), keeping
// only *codec.WirePacket entries.
func paramObjects(src *lintkit.FuncSource) map[types.Object]int {
	out := make(map[types.Object]int)
	addField := func(f *ast.Field, idx func() int) {
		for _, name := range f.Names {
			obj := src.Pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			ptr, ok := obj.Type().(*types.Pointer)
			if !ok || !isWirePacket(ptr.Elem()) {
				continue
			}
			out[obj] = idx()
		}
	}
	if src.Decl.Recv != nil {
		for _, f := range src.Decl.Recv.List {
			addField(f, func() int { return recvIndex })
		}
	}
	i := 0
	if src.Decl.Type.Params != nil {
		for _, f := range src.Decl.Type.Params.List {
			for _, name := range f.Names {
				obj := src.Pkg.Info.Defs[name]
				idx := i
				i++
				if obj == nil {
					continue
				}
				ptr, ok := obj.Type().(*types.Pointer)
				if !ok || !isWirePacket(ptr.Elem()) {
					continue
				}
				out[obj] = idx
			}
			if len(f.Names) == 0 {
				i++
			}
		}
	}
	return out
}
