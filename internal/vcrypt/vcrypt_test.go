package vcrypt

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func testKey(alg Algorithm) []byte {
	k := make([]byte, alg.KeySize())
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

func TestCipherRoundTripAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{AES128, AES256, TripleDES} {
		c, err := NewCipher(alg, testKey(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		payload := []byte("the quick brown fox jumps over the lazy dog 0123456789")
		orig := append([]byte(nil), payload...)
		c.EncryptPacket(42, payload)
		if bytes.Equal(payload, orig) {
			t.Fatalf("%v: encryption left payload unchanged", alg)
		}
		c.DecryptPacket(42, payload)
		if !bytes.Equal(payload, orig) {
			t.Fatalf("%v: round trip failed", alg)
		}
	}
}

func TestCipherWrongKeySize(t *testing.T) {
	if _, err := NewCipher(AES256, make([]byte, 16)); err == nil {
		t.Fatal("short key should fail")
	}
	if _, err := NewCipher(TripleDES, make([]byte, 16)); err == nil {
		t.Fatal("short 3DES key should fail")
	}
}

func TestCipherSequenceBindsIV(t *testing.T) {
	c, _ := NewCipher(AES128, testKey(AES128))
	a := []byte("identical plaintext payload")
	b := append([]byte(nil), a...)
	c.EncryptPacket(1, a)
	c.EncryptPacket(2, b)
	if bytes.Equal(a, b) {
		t.Fatal("different sequence numbers must give different ciphertexts")
	}
}

func TestCipherWrongSeqGarbles(t *testing.T) {
	c, _ := NewCipher(AES256, testKey(AES256))
	payload := []byte("some packet payload bytes here")
	orig := append([]byte(nil), payload...)
	c.EncryptPacket(7, payload)
	c.DecryptPacket(8, payload) // wrong sequence: stays garbled
	if bytes.Equal(payload, orig) {
		t.Fatal("decrypting with the wrong IV must not recover plaintext")
	}
}

func TestCipherIndependentPackets(t *testing.T) {
	// Corrupting one packet must not affect another (the reason the paper
	// applies OFB per segment).
	c, _ := NewCipher(AES128, testKey(AES128))
	p1 := []byte("packet one payload")
	p2 := []byte("packet two payload")
	o2 := append([]byte(nil), p2...)
	c.EncryptPacket(1, p1)
	c.EncryptPacket(2, p2)
	p1[0] ^= 0xFF // corruption in transit
	c.DecryptPacket(2, p2)
	if !bytes.Equal(p2, o2) {
		t.Fatal("corruption propagated across packets")
	}
}

func TestCipherRoundTripProperty(t *testing.T) {
	c, _ := NewCipher(AES256, testKey(AES256))
	f := func(seq uint64, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		orig := append([]byte(nil), payload...)
		c.EncryptPacket(seq, payload)
		c.DecryptPacket(seq, payload)
		return bytes.Equal(payload, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if AES128.String() != "AES128" || AES256.String() != "AES256" ||
		TripleDES.String() != "3DES" || Algorithm(9).String() != "unknown" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).KeySize() != 0 {
		t.Fatal("unknown algorithm key size should be 0")
	}
	if _, err := NewCipher(Algorithm(9), nil); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
}

func TestPolicyClassProbabilities(t *testing.T) {
	cases := []struct {
		p          Policy
		encI, encP float64
	}{
		{Policy{Mode: ModeNone}, 0, 0},
		{Policy{Mode: ModeAll}, 1, 1},
		{Policy{Mode: ModeIFrames}, 1, 0},
		{Policy{Mode: ModePFrames}, 0, 1},
		{Policy{Mode: ModeIPlusFracP, FracP: 0.2}, 1, 0.2},
		{Policy{Mode: ModeHalfI}, 0.5, 0},
	}
	for _, c := range cases {
		i, p := c.p.ClassProbabilities()
		if i != c.encI || p != c.encP {
			t.Fatalf("%v: got (%v,%v) want (%v,%v)", c.p.Mode, i, p, c.encI, c.encP)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{Mode: ModeIPlusFracP, FracP: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Policy{Mode: ModeIPlusFracP, FracP: 1.5}).Validate(); err == nil {
		t.Fatal("FracP > 1 should fail")
	}
	if err := (Policy{Mode: Mode(42)}).Validate(); err == nil {
		t.Fatal("unknown mode should fail")
	}
}

func TestSelectorFractionConverges(t *testing.T) {
	sel, err := NewSelector(Policy{Mode: ModeIPlusFracP, FracP: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	n := 10000
	enc := 0
	for i := 0; i < n; i++ {
		if sel.ShouldEncrypt(false) {
			enc++
		}
	}
	if frac := float64(enc) / float64(n); math.Abs(frac-0.2) > 0.001 {
		t.Fatalf("realised P fraction %v want 0.2", frac)
	}
	// All I packets encrypted under the same policy.
	for i := 0; i < 100; i++ {
		if !sel.ShouldEncrypt(true) {
			t.Fatal("I packets must always be encrypted under I+fracP")
		}
	}
}

func TestSelectorExtremes(t *testing.T) {
	none, _ := NewSelector(Policy{Mode: ModeNone})
	all, _ := NewSelector(Policy{Mode: ModeAll})
	for i := 0; i < 10; i++ {
		if none.ShouldEncrypt(i%2 == 0) {
			t.Fatal("none must never encrypt")
		}
		if !all.ShouldEncrypt(i%2 == 0) {
			t.Fatal("all must always encrypt")
		}
	}
}

func TestSelectorHalfI(t *testing.T) {
	sel, _ := NewSelector(Policy{Mode: ModeHalfI})
	enc := 0
	for i := 0; i < 1000; i++ {
		if sel.ShouldEncrypt(true) {
			enc++
		}
		if sel.ShouldEncrypt(false) {
			t.Fatal("half-I must not encrypt P packets")
		}
	}
	if enc != 500 {
		t.Fatalf("half-I encrypted %d of 1000 I packets", enc)
	}
}

func TestSelectorRejectsBadPolicy(t *testing.T) {
	if _, err := NewSelector(Policy{Mode: ModeIPlusFracP, FracP: -1}); err == nil {
		t.Fatal("bad policy should be rejected")
	}
}

func TestStandardPolicies(t *testing.T) {
	ps := StandardPolicies()
	if len(ps) != 12 {
		t.Fatalf("want 12 policies, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if seen[p.Name()] {
			t.Fatalf("duplicate policy %s", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestPolicyNames(t *testing.T) {
	p := Policy{Mode: ModeIPlusFracP, FracP: 0.2, Alg: AES256}
	if p.Name() != "I+20%P AES256" {
		t.Fatalf("name = %q", p.Name())
	}
	q := Policy{Mode: ModeIFrames, Alg: TripleDES}
	if q.Name() != "I 3DES" {
		t.Fatalf("name = %q", q.Name())
	}
}
