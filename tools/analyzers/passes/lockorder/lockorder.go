// Package lockorder proves a consistent module-wide lock-acquisition
// order. Every mutex is abstracted to a lock class — the named type
// that owns it plus the field name (ingestShard.mu), a package-level
// variable (transport.statsMu), or a declaration-site-qualified local
// (bufMu@live_udp.go:560) — and every acquisition made while another
// lock is held contributes a directed edge between the two classes.
// Calls are interprocedural: a bottom-up may-acquire summary records
// which classes each module-local function can lock, so holding A
// while calling a helper that locks B also adds A -> B. A cycle in the
// resulting graph is a potential deadlock: two goroutines can each
// hold one lock of the cycle and wait forever for the next.
//
// Intended orders are blessed with a declaration comment anywhere in
// an analyzed package:
//
//	//lint:lockorder ingestShard.mu -> ingestSession.mu (why this nesting is fixed)
//
// Declared edges join the graph, so reversing a documented order forms
// a two-node cycle and is reported at the reversing acquisition; the
// declared direction itself is never reported. Acquiring a lock while
// another lock of the same class is held is reported unconditionally —
// two instances of one class have no defined order.
//
// The analysis is a forward may-analysis over the lintkit CFG (the
// same machinery as lockheld), so edges are "may" facts: a lock held
// on only one path into an acquisition still orders it. Function
// literals are analyzed as separate bodies with an empty held set, and
// locks taken inside literals are not attributed to the enclosing
// function's summary (a literal generally runs on another goroutine).
// Calls through function values or interface methods contribute no
// edges — a documented under-approximation.
package lockorder

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/tools/analyzers/lintkit"
)

// DefaultPackages are the layers whose bodies contribute edges and
// whose files may carry //lint:lockorder declarations. May-acquire
// summaries still cover the whole module, so holding a transport lock
// across a ledger or vcrypt call is ordered correctly.
var DefaultPackages = []string{
	"internal/transport",
	"internal/netem",
	"internal/obs",
}

// Analyzer is the lockorder pass.
var Analyzer = &lintkit.Analyzer{
	Name: "lockorder",
	Doc: "Builds the module-wide lock-acquisition graph (lock classes " +
		"are owner-type/field pairs; held-while-acquiring and " +
		"held-while-calling add edges via bottom-up may-acquire " +
		"summaries) and reports cycles — potential deadlocks — at " +
		"every acquisition that participates in one. Intended " +
		"nestings are declared with //lint:lockorder A -> B (reason).",
	Packages: DefaultPackages,
	Run:      run,
}

func run(pass *lintkit.Pass) error {
	if pass.Prog == nil {
		return nil
	}
	g := buildGraph(pass.Prog)
	for _, r := range g.reports {
		if r.pkg.Types == pass.Pkg {
			pass.Reportf(r.pos, "%s", r.msg)
		}
	}
	return nil
}

// lockClass abstracts one mutex to its owning type (or package, or
// declaration site for locals) plus its name.
type lockClass struct{ owner, field string }

func (c lockClass) String() string {
	if c.owner == "" {
		return c.field
	}
	return c.owner + "." + c.field
}

// lockKey identifies one mutex instance inside a body: the root
// variable plus the selector path, so two shards' locks stay distinct
// in the held set even though they share a class.
type lockKey struct {
	root types.Object
	path string
}

type edgeKey struct{ from, to lockClass }

// witness is one acquisition site that produced an edge.
type witness struct {
	pkg   *lintkit.Package
	pos   token.Pos
	where string
}

type edgeInfo struct {
	declared  bool
	declWhere string
	wits      []witness
}

type report struct {
	pkg *lintkit.Package
	pos token.Pos
	msg string
}

// orderGraph is the module-wide acquisition graph plus the findings
// derived from it, computed once per run and shared by every package's
// pass invocation.
type orderGraph struct {
	edges   map[edgeKey]*edgeInfo
	reports []report
}

func (g *orderGraph) edge(k edgeKey) *edgeInfo {
	info := g.edges[k]
	if info == nil {
		info = &edgeInfo{}
		g.edges[k] = info
	}
	return info
}

func (g *orderGraph) addEdge(from, to lockClass, pkg *lintkit.Package, pos token.Pos, fnName string) {
	info := g.edge(edgeKey{from, to})
	info.wits = append(info.wits, witness{pkg: pkg, pos: pos, where: posString(pkg, pos) + " in " + fnName})
}

func posString(pkg *lintkit.Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

type orderCacheKey struct{}

func buildGraph(prog *lintkit.Program) *orderGraph {
	v := prog.Cache(orderCacheKey{}, func() any {
		g := &orderGraph{edges: map[edgeKey]*edgeInfo{}}
		acq := acquireSummaries(prog)
		for _, pkg := range prog.Packages {
			if !inScope(pkg.ImportPath) {
				continue
			}
			collectDeclarations(g, pkg)
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					name := fd.Name.Name
					bodyEdges(g, acq, pkg, name, fd.Body)
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							bodyEdges(g, acq, pkg, name+" (func literal)", lit.Body)
						}
						return true
					})
				}
			}
		}
		buildReports(g)
		return g
	})
	return v.(*orderGraph)
}

func inScope(path string) bool {
	for _, pat := range DefaultPackages {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// collectDeclarations parses //lint:lockorder comments into declared
// edges; malformed declarations become findings so a typo cannot
// silently un-bless an order.
func collectDeclarations(g *orderGraph, pkg *lintkit.Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:lockorder") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:lockorder"))
				from, to, ok := parseDeclaration(rest)
				if !ok {
					g.reports = append(g.reports, report{
						pkg: pkg,
						pos: c.Pos(),
						msg: `malformed //lint:lockorder declaration: need "lockA -> lockB (reason)"`,
					})
					continue
				}
				info := g.edge(edgeKey{from, to})
				info.declared = true
				info.declWhere = "declared at " + posString(pkg, c.Pos())
			}
		}
	}
}

func parseDeclaration(s string) (from, to lockClass, ok bool) {
	arrow := strings.Index(s, "->")
	if arrow < 0 {
		return from, to, false
	}
	fromName := strings.TrimSpace(s[:arrow])
	rest := strings.TrimSpace(s[arrow+2:])
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return from, to, false
	}
	toName := strings.TrimSpace(rest[:open])
	reason := strings.TrimSpace(rest[open+1 : len(rest)-1])
	if fromName == "" || toName == "" || reason == "" {
		return from, to, false
	}
	return classFromName(fromName), classFromName(toName), true
}

func classFromName(s string) lockClass {
	if i := strings.LastIndex(s, "."); i >= 0 {
		return lockClass{owner: s[:i], field: s[i+1:]}
	}
	return lockClass{field: s}
}

// bodyEdges solves the may-held analysis for one body, then replays
// the blocks once in deterministic order, adding a graph edge for
// every acquisition (direct lock or call with a non-empty may-acquire
// summary) made under a held lock.
func bodyEdges(g *orderGraph, acq map[*types.Func][]lockClass, pkg *lintkit.Package, fnName string, body *ast.BlockStmt) {
	cfg := lintkit.BuildCFG(body)
	fl := &orderFlow{pkg: pkg}
	in := lintkit.Solve(cfg, fl)
	for _, b := range cfg.Blocks {
		f, ok := in[b]
		if !ok {
			continue
		}
		held := fl.Clone(f).(heldFact)
		for _, n := range b.Nodes {
			for _, ev := range fl.events(n) {
				switch ev.kind {
				case evLock:
					for _, h := range heldClasses(held) {
						g.addEdge(h, ev.class, pkg, ev.pos, fnName)
					}
					held[ev.key] = ev.class
				case evUnlock:
					delete(held, ev.key)
				case evCall:
					if len(held) == 0 {
						break
					}
					for _, c := range acq[ev.fn] {
						for _, h := range heldClasses(held) {
							g.addEdge(h, c, pkg, ev.pos, fnName)
						}
					}
				}
			}
		}
	}
}

// heldClasses returns the distinct classes of the held set in a stable
// order.
func heldClasses(held heldFact) []lockClass {
	seen := map[string]lockClass{}
	for _, c := range held {
		seen[c.String()] = c
	}
	names := make([]string, 0, len(seen))
	for s := range seen {
		names = append(names, s)
	}
	sort.Strings(names)
	out := make([]lockClass, 0, len(names))
	for _, s := range names {
		out = append(out, seen[s])
	}
	return out
}

// buildReports finds the cyclic strongly connected components of the
// edge set and turns every observed, undeclared acquisition inside a
// cycle into a finding. Declared edges anchor cycles but are never
// themselves reported: the declaration is the sanctioned direction,
// the violation is whatever closes the loop against it.
func buildReports(g *orderGraph) {
	keys := make([]edgeKey, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from.String() != b.from.String() {
			return a.from.String() < b.from.String()
		}
		return a.to.String() < b.to.String()
	})
	comp := sccOf(keys)
	for _, k := range keys {
		info := g.edges[k]
		cyclic := k.from == k.to || comp[k.from.String()] == comp[k.to.String()]
		if !cyclic || info.declared {
			continue
		}
		var msg string
		if k.from == k.to {
			msg = fmt.Sprintf("acquiring %s while another %s is held: same-class locks have no defined instance order (potential deadlock)", k.to, k.from)
		} else {
			msg = fmt.Sprintf("acquiring %s while %s is held creates a lock-order cycle (%s)", k.to, k.from, cyclePath(g, keys, k))
		}
		for _, w := range info.wits {
			g.reports = append(g.reports, report{pkg: w.pkg, pos: w.pos, msg: msg})
		}
	}
}

// sccOf is iterative Tarjan over the class nodes.
func sccOf(keys []edgeKey) map[string]int {
	adj := map[string][]string{}
	var nodes []string
	seen := map[string]bool{}
	addNode := func(s string) {
		if !seen[s] {
			seen[s] = true
			nodes = append(nodes, s)
		}
	}
	for _, k := range keys {
		addNode(k.from.String())
		addNode(k.to.String())
		adj[k.from.String()] = append(adj[k.from.String()], k.to.String())
	}
	index := map[string]int{}
	low := map[string]int{}
	onstack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0
	type frame struct {
		v string
		i int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		var frames []frame
		push := func(v string) {
			index[v] = next
			low[v] = next
			next++
			stack = append(stack, v)
			onstack[v] = true
			frames = append(frames, frame{v: v})
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(adj[f.v]) {
				w := adj[f.v][f.i]
				f.i++
				if _, ok := index[w]; !ok {
					push(w)
				} else if onstack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onstack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// cyclePath renders the shortest return path that closes the cycle the
// edge k belongs to, each hop tagged with its witness or declaration.
func cyclePath(g *orderGraph, keys []edgeKey, k edgeKey) string {
	out := map[string][]edgeKey{}
	for _, ek := range keys {
		out[ek.from.String()] = append(out[ek.from.String()], ek)
	}
	type qe struct {
		node string
		prev int
		via  edgeKey
	}
	start, goal := k.to.String(), k.from.String()
	all := []qe{{node: start, prev: -1}}
	visited := map[string]bool{start: true}
	for i := 0; i < len(all); i++ {
		cur := all[i]
		if cur.node == goal {
			var hops []edgeKey
			for j := i; all[j].prev >= 0; j = all[j].prev {
				hops = append([]edgeKey{all[j].via}, hops...)
			}
			parts := make([]string, 0, len(hops))
			for _, h := range hops {
				parts = append(parts, fmt.Sprintf("%s -> %s %s", h.from, h.to, g.whereOf(h)))
			}
			return "reverse path: " + strings.Join(parts, ", ")
		}
		for _, ek := range out[cur.node] {
			if visited[ek.to.String()] {
				continue
			}
			visited[ek.to.String()] = true
			all = append(all, qe{node: ek.to.String(), prev: i, via: ek})
		}
	}
	return "reverse path through " + start
}

func (g *orderGraph) whereOf(k edgeKey) string {
	info := g.edges[k]
	if info.declared {
		return "(" + info.declWhere + ")"
	}
	if len(info.wits) > 0 {
		return "(" + info.wits[0].where + ")"
	}
	return "(unwitnessed)"
}

// --- may-held flow over one body ---

type evKind int

const (
	evLock evKind = iota
	evUnlock
	evCall
)

type event struct {
	kind  evKind
	pos   token.Pos
	key   lockKey
	class lockClass
	fn    *types.Func
}

type heldFact map[lockKey]lockClass

// orderFlow implements the may-held analysis; edge collection happens
// in bodyEdges' replay, not in Transfer, so Solve stays pure.
type orderFlow struct{ pkg *lintkit.Package }

func (p *orderFlow) EntryFact() lintkit.Fact { return heldFact{} }

func (p *orderFlow) Clone(f lintkit.Fact) lintkit.Fact {
	n := heldFact{}
	for k, v := range f.(heldFact) {
		n[k] = v
	}
	return n
}

func (p *orderFlow) Join(a, b lintkit.Fact) lintkit.Fact {
	x, y := a.(heldFact), b.(heldFact)
	for k, v := range y {
		if _, ok := x[k]; !ok {
			x[k] = v
		}
	}
	return x
}

func (p *orderFlow) Equal(a, b lintkit.Fact) bool {
	x, y := a.(heldFact), b.(heldFact)
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if _, ok := y[k]; !ok {
			return false
		}
	}
	return true
}

func (p *orderFlow) TransferEdge(e *lintkit.Edge, f lintkit.Fact) lintkit.Fact { return f }

func (p *orderFlow) Transfer(n ast.Node, f lintkit.Fact) lintkit.Fact {
	held := f.(heldFact)
	for _, ev := range p.events(n) {
		switch ev.kind {
		case evLock:
			held[ev.key] = ev.class
		case evUnlock:
			delete(held, ev.key)
		}
	}
	return held
}

// events extracts the order-relevant actions of one CFG node in source
// order, respecting the CFG's statement decomposition (range headers
// contribute only their ranged expression, case clauses their guards,
// go/defer statements their synchronously evaluated arguments) and
// never descending into function literals.
func (p *orderFlow) events(n ast.Node) []event {
	switch n := n.(type) {
	case *ast.RangeStmt:
		return p.exprEvents(n.X, nil)
	case *ast.CaseClause:
		var evs []event
		for _, e := range n.List {
			evs = append(evs, p.exprEvents(e, nil)...)
		}
		return evs
	case *ast.SelectStmt:
		return nil
	case *ast.GoStmt:
		// The spawned call acquires on its own goroutine; only the
		// argument expressions run here.
		var evs []event
		for _, a := range n.Call.Args {
			evs = append(evs, p.exprEvents(a, nil)...)
		}
		return evs
	case *ast.DeferStmt:
		// The deferred call itself is replayed in the CFG exit block.
		var evs []event
		for _, a := range n.Call.Args {
			evs = append(evs, p.exprEvents(a, nil)...)
		}
		return evs
	case ast.Node:
		return p.exprEvents(n, nil)
	}
	return nil
}

func (p *orderFlow) exprEvents(n ast.Node, evs []event) []event {
	if n == nil {
		return evs
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.IfStmt, *ast.ForStmt, *ast.RangeStmt:
			return false // decomposed by the CFG
		case *ast.CallExpr:
			for _, a := range c.Args {
				evs = p.exprEvents(a, evs)
			}
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
				evs = p.exprEvents(sel.X, evs)
			}
			evs = append(evs, p.callEvents(c)...)
			return false
		}
		return true
	})
	return evs
}

func (p *orderFlow) callEvents(call *ast.CallExpr) []event {
	fn := lintkit.FuncForCall(p.pkg.Info, call)
	if fn == nil {
		return nil // function value / interface call: no edge (documented)
	}
	if ev, ok := p.lockOp(call, fn); ok {
		return []event{ev}
	}
	return []event{{kind: evCall, pos: call.Pos(), fn: fn}}
}

// lockOp recognizes Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex
// receivers and derives both the instance key and the class.
func (p *orderFlow) lockOp(call *ast.CallExpr, fn *types.Func) (event, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return event{}, false
	}
	var kind evKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = evLock
	case "Unlock", "RUnlock":
		kind = evUnlock
	default:
		return event{}, false
	}
	if r := recvName(fn); r != "Mutex" && r != "RWMutex" {
		return event{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return event{}, false
	}
	key, ok := keyFor(p.pkg, sel.X)
	if !ok {
		return event{}, false
	}
	cls, ok := classFor(p.pkg, sel.X)
	if !ok {
		return event{}, false
	}
	return event{kind: kind, pos: call.Pos(), key: key, class: cls}, true
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// classFor abstracts a lock expression to its class: the named type
// owning the field, the package for a package-level variable, or the
// declaration site for a local.
func classFor(pkg *lintkit.Package, e ast.Expr) (lockClass, bool) {
	e = ast.Unparen(e)
	for {
		if s, ok := e.(*ast.StarExpr); ok {
			e = ast.Unparen(s.X)
			continue
		}
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
			continue
		}
		break
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if t := pkg.Info.Types[x.X].Type; t != nil {
			if named := namedOf(t); named != nil {
				return lockClass{owner: named.Obj().Name(), field: x.Sel.Name}, true
			}
		}
		return lockClass{}, false
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			obj = pkg.Info.Defs[x]
		}
		if obj == nil {
			return lockClass{}, false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return lockClass{owner: obj.Pkg().Name(), field: x.Name}, true
		}
		return lockClass{field: x.Name + "@" + posString(pkg, obj.Pos())}, true
	}
	return lockClass{}, false
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// keyFor renders a lock expression to (root object, path text), the
// instance-precise identity used by the held set.
func keyFor(pkg *lintkit.Package, e ast.Expr) (lockKey, bool) {
	root := rootIdent(e)
	if root == nil {
		return lockKey{}, false
	}
	obj := pkg.Info.Uses[root]
	if obj == nil {
		obj = pkg.Info.Defs[root]
	}
	if obj == nil {
		return lockKey{}, false
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return lockKey{root: obj, path: root.Name}, true
	}
	return lockKey{root: obj, path: buf.String()}, true
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// --- bottom-up may-acquire summaries ---

type acqCacheKey struct{}

// acquireSummaries computes, bottom-up over the module call graph, the
// set of lock classes each module-local function may acquire, directly
// or through callees. Function literals are excluded (they run on
// their own goroutines); go statements are excluded for the same
// reason; deferred calls are included — they run at return, while the
// caller's other locks may still be held.
func acquireSummaries(prog *lintkit.Program) map[*types.Func][]lockClass {
	v := prog.Cache(acqCacheKey{}, func() any {
		sums := make(map[*types.Func]map[string]lockClass)
		cg := lintkit.BuildCallGraph(prog)
		for _, scc := range cg.BottomUp() {
			// Iterate the component to a fixpoint: sets only grow, and
			// the class universe is finite.
			for changed := true; changed; {
				changed = false
				for _, fn := range scc {
					src := prog.Source(fn)
					if src == nil {
						continue
					}
					cur := sums[fn]
					if cur == nil {
						cur = map[string]lockClass{}
						sums[fn] = cur
					}
					before := len(cur)
					bodyAcquires(src, sums, cur)
					if len(cur) != before {
						changed = true
					}
				}
			}
		}
		out := make(map[*types.Func][]lockClass, len(sums))
		for fn, set := range sums {
			names := make([]string, 0, len(set))
			for s := range set {
				names = append(names, s)
			}
			sort.Strings(names)
			classes := make([]lockClass, 0, len(names))
			for _, s := range names {
				classes = append(classes, set[s])
			}
			out[fn] = classes
		}
		return out
	})
	return v.(map[*types.Func][]lockClass)
}

func bodyAcquires(src *lintkit.FuncSource, sums map[*types.Func]map[string]lockClass, into map[string]lockClass) {
	fl := &orderFlow{pkg: src.Pkg}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				for _, a := range c.Call.Args {
					walk(a)
				}
				return false
			case *ast.CallExpr:
				fn := lintkit.FuncForCall(src.Pkg.Info, c)
				if fn == nil {
					return true
				}
				if ev, ok := fl.lockOp(c, fn); ok {
					if ev.kind == evLock {
						into[ev.class.String()] = ev.class
					}
					return true
				}
				if sub, ok := sums[fn]; ok {
					for s, cl := range sub {
						into[s] = cl
					}
				}
				return true
			}
			return true
		})
	}
	walk(src.Decl.Body)
}
