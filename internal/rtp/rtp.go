// Package rtp implements the RTP framing of Section 5: each video slice is
// carried in an RTP packet over UDP, and the header's Marker bit signals
// whether the payload is encrypted under the session policy, so the
// receiver knows which packets to decrypt. The header layout follows
// RFC 3550.
package rtp

import (
	"encoding/binary"
	"fmt"
)

// HeaderSize is the fixed RTP header size (no CSRC, no extensions).
const HeaderSize = 12

// Version is the RTP version (2).
const Version = 2

// PayloadTypeVideo is the dynamic payload type used for the codec's
// slices.
const PayloadTypeVideo = 96

// Packet is a parsed RTP packet. Per the paper's convention, Marker set
// means "payload is encrypted".
type Packet struct {
	PayloadType uint8
	Marker      bool // encrypted-payload flag (Section 5)
	Sequence    uint16
	Timestamp   uint32
	SSRC        uint32
	Payload     []byte
}

// Encrypted reports whether the payload is flagged as encrypted.
func (p Packet) Encrypted() bool { return p.Marker }

// Marshal serialises the packet.
func (p Packet) Marshal() []byte {
	buf := make([]byte, HeaderSize+len(p.Payload))
	buf[0] = Version << 6
	b1 := p.PayloadType & 0x7F
	if p.Marker {
		b1 |= 0x80
	}
	buf[1] = b1
	binary.BigEndian.PutUint16(buf[2:], p.Sequence)
	binary.BigEndian.PutUint32(buf[4:], p.Timestamp)
	binary.BigEndian.PutUint32(buf[8:], p.SSRC)
	copy(buf[HeaderSize:], p.Payload)
	return buf
}

// MarshalInto serialises the packet into buf, whose first HeaderSize
// bytes are header space and whose remainder is expected to already hold
// the payload (the zero-copy path: the packetizer reserved the headroom
// and the payload was encrypted in place behind it). It returns
// buf[:HeaderSize+len(p.Payload)]. If the payload does not alias
// buf[HeaderSize:], it is copied there, so the call is also correct for
// detached payloads; buf must then have capacity for header plus
// payload.
func (p Packet) MarshalInto(buf []byte) []byte {
	buf = buf[:HeaderSize+len(p.Payload)]
	buf[0] = Version << 6
	b1 := p.PayloadType & 0x7F
	if p.Marker {
		b1 |= 0x80
	}
	buf[1] = b1
	binary.BigEndian.PutUint16(buf[2:], p.Sequence)
	binary.BigEndian.PutUint32(buf[4:], p.Timestamp)
	binary.BigEndian.PutUint32(buf[8:], p.SSRC)
	if len(p.Payload) > 0 && &buf[HeaderSize] != &p.Payload[0] {
		copy(buf[HeaderSize:], p.Payload)
	}
	return buf
}

// Parse decodes an RTP packet. The payload aliases data; copy it if the
// buffer is reused.
func Parse(data []byte) (Packet, error) {
	if len(data) < HeaderSize {
		return Packet{}, fmt.Errorf("rtp: packet of %d bytes too short", len(data))
	}
	if v := data[0] >> 6; v != Version {
		return Packet{}, fmt.Errorf("rtp: unsupported version %d", v)
	}
	if data[0]&0x20 != 0 {
		return Packet{}, fmt.Errorf("rtp: padding not supported")
	}
	if data[0]&0x10 != 0 {
		// An extension header would shift the payload start; accepting
		// the bit would mis-frame the slice bytes that follow.
		return Packet{}, fmt.Errorf("rtp: header extensions not supported")
	}
	if cc := data[0] & 0x0F; cc != 0 {
		return Packet{}, fmt.Errorf("rtp: CSRC entries not supported (%d)", cc)
	}
	p := Packet{
		PayloadType: data[1] & 0x7F,
		Marker:      data[1]&0x80 != 0,
		Sequence:    binary.BigEndian.Uint16(data[2:]),
		Timestamp:   binary.BigEndian.Uint32(data[4:]),
		SSRC:        binary.BigEndian.Uint32(data[8:]),
		Payload:     data[HeaderSize:],
	}
	return p, nil
}

// Sequencer hands out consecutive sequence numbers and RTP timestamps for
// a stream. RTP timestamps tick at 90 kHz as usual for video.
type Sequencer struct {
	seq  uint16
	ssrc uint32
}

// NewSequencer creates a sequencer for one stream (SSRC).
func NewSequencer(ssrc uint32) *Sequencer { return &Sequencer{ssrc: ssrc} }

// ClockRate is the RTP video clock (Hz).
const ClockRate = 90000

// Next builds the next packet for a payload captured at mediaTime seconds.
func (s *Sequencer) Next(payload []byte, mediaTime float64, encrypted bool) Packet {
	p := Packet{
		PayloadType: PayloadTypeVideo,
		Marker:      encrypted,
		Sequence:    s.seq,
		Timestamp:   uint32(mediaTime * ClockRate),
		SSRC:        s.ssrc,
		Payload:     payload,
	}
	s.seq++
	return p
}
