// Command thriftylint runs the repository's invariant analyzers over a
// Go module and exits non-zero on any finding. It is the machine-
// checked form of the rules DESIGN.md states in prose: seeded
// determinism, crypto hygiene in vcrypt, no wall clocks in model code,
// no silently dropped bitstream/socket errors, no exact float
// comparisons in the numerical packages, and — via the value-range
// passes — static bounds proofs on attacker-controlled integers,
// wrap-safe sequence arithmetic, and extended-sequence IV derivation.
//
// Usage:
//
//	thriftylint [-C moduleDir] [-list] [-json] [-staleallow] [packages...]
//
// packages default to ./... inside the target module. With -json the
// findings are written to stdout as one JSON array of
// {file,line,column,pass,message} objects (machine-readable for editor
// and CI integration); the exit status is unchanged. With -staleallow
// the suite additionally reports every //lint:allow or //nolint marker
// that names one of these analyzers yet suppresses no finding —
// suppression rot is how lint gates die. The standard vet suite is not
// re-implemented here — CI and scripts/lint.sh run `go vet ./...`
// alongside this binary, which together form the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/auditemit"
	"repro/tools/analyzers/passes/bitioerr"
	"repro/tools/analyzers/passes/bufown"
	"repro/tools/analyzers/passes/cryptorand"
	"repro/tools/analyzers/passes/exhaustenum"
	"repro/tools/analyzers/passes/floateq"
	"repro/tools/analyzers/passes/ivunique"
	"repro/tools/analyzers/passes/lockheld"
	"repro/tools/analyzers/passes/lockorder"
	"repro/tools/analyzers/passes/netbound"
	"repro/tools/analyzers/passes/plainleak"
	"repro/tools/analyzers/passes/seededrand"
	"repro/tools/analyzers/passes/seqwrap"
	"repro/tools/analyzers/passes/walltime"
)

// analyzers is the thriftylint suite. Order is presentation-only;
// findings are sorted by position.
var analyzers = []*lintkit.Analyzer{
	auditemit.Analyzer,
	bitioerr.Analyzer,
	bufown.Analyzer,
	cryptorand.Analyzer,
	exhaustenum.Analyzer,
	floateq.Analyzer,
	ivunique.Analyzer,
	lockheld.Analyzer,
	lockorder.Analyzer,
	netbound.Analyzer,
	plainleak.Analyzer,
	seededrand.Analyzer,
	seqwrap.Analyzer,
	walltime.Analyzer,
}

// jsonFinding is the machine-readable form of one diagnostic.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func main() {
	dir := flag.String("C", ".", "directory of the module to lint")
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	staleAllow := flag.Bool("staleallow", false, "also report suppression markers that suppress no finding")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			if len(a.Packages) > 0 {
				fmt.Printf("%-12s   scope: %v\n", "", a.Packages)
			}
		}
		return
	}
	pkgs, err := lintkit.LoadDir(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thriftylint:", err)
		os.Exit(2)
	}
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thriftylint:", err)
		os.Exit(2)
	}
	if *staleAllow {
		// The run above recorded which markers suppressed a finding;
		// what remains unused and names one of our analyzers is rot.
		diags = append(diags, lintkit.StaleAllows(pkgs, analyzers)...)
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Pass:    d.Analyzer,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "thriftylint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "thriftylint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
