// Package transport holds the clean ordering shapes: nesting that
// matches a declared order, sequential (non-nested) acquisition in
// the reverse direction, goroutine literals whose critical sections
// are independent of the spawner's, and the explicit allow escape
// hatch on a deliberate reversal.
package transport

import "sync"

type shard struct {
	mu       sync.Mutex
	sessions map[int]*session
}

//lint:lockorder shard.mu -> session.mu (the sweeper probes session idleness under the shard lock)
type session struct {
	mu     sync.Mutex
	lastAt int
}

// sweep follows the declared direction: an edge that matches a
// declaration is sanctioned and never reported.
func sweep(sh *shard) {
	sh.mu.Lock()
	for _, sess := range sh.sessions {
		sess.mu.Lock()
		_ = sess.lastAt
		sess.mu.Unlock()
	}
	sh.mu.Unlock()
}

// handoff touches both locks in the reverse order but never holds
// them together: sequential sections contribute no edge.
func handoff(sess *session, sh *shard) {
	sess.mu.Lock()
	sess.mu.Unlock()
	sh.mu.Lock()
	sh.mu.Unlock()
}

// spawn starts a goroutine under the shard lock; the literal runs with
// its own empty held set, so its session acquisition is unordered
// relative to the spawner's critical section.
func spawn(sh *shard, sess *session) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	go func() {
		sess.mu.Lock()
		sess.lastAt++
		sess.mu.Unlock()
	}()
}

// reversed is a deliberate, reviewed reversal: the allow marker names
// the pass and the reason, and the matching declared direction above
// keeps sweep unreported.
func reversed(sess *session, sh *shard) {
	sess.mu.Lock()
	sh.mu.Lock() //lint:allow lockorder startup path runs single-goroutine before the sweeper exists
	sh.mu.Unlock()
	sess.mu.Unlock()
}
