package core

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/codec"
	"repro/internal/stats"
	"repro/internal/video"
)

// The paper validates its frame success rate model (Eq. 20) "via extensive
// experiments using the EvalVid tool". This test replays that validation
// on the codec substrate: subject an I-frame's slices to Bernoulli loss,
// call the frame "decoded" when its measured distortion stays within the
// sensitivity threshold used during calibration, and compare the empirical
// frequency with FrameSuccess(pd, n, s) for the calibrated s.
func TestFrameSuccessModelMatchesMeasurement(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 24, Motion: video.MotionMedium, Seed: 41})
	cfg := codec.Config{Width: 176, Height: 144, GOPSize: 12, QI: 8, QP: 10, SearchRange: 16}
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := codec.DecodeSequence(encoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseMSE := video.SequenceMSE(clip, clean)

	// Calibrate s for the I-frame class exactly as MeasureDistortion does.
	si, err := measureSensitivity(clip, encoded, cfg, 1400, codec.IFrame, baseMSE)
	if err != nil {
		t.Fatal(err)
	}

	// Pick the second I-frame; count empirical decodability under loss.
	idx := 12
	pkts, err := codec.Packetize(encoded[idx], 1400)
	if err != nil {
		t.Fatal(err)
	}
	n := len(pkts)
	if n < 3 {
		t.Skipf("I-frame fragmented into only %d packets", n)
	}
	threshold := 3*baseMSE + 40
	rng := stats.NewRNG(99)
	for _, pd := range []float64{0.6, 0.8, 0.95} {
		const trials = 120
		decoded := 0
		for trial := 0; trial < trials; trial++ {
			re, err := codec.NewReassembler(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				if rng.Bool(pd) {
					if err := re.Add(p.Payload); err != nil {
						t.Fatal(err)
					}
				}
			}
			frames := make([]*codec.EncodedFrame, len(encoded))
			copy(frames, encoded)
			frames[idx] = re.Frame(idx) // possibly nil
			dec, err := codec.DecodeSequence(frames, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if video.MSE(clip[idx], dec[idx]) <= threshold {
				decoded++
			}
		}
		empirical := float64(decoded) / trials
		model := analytic.FrameSuccess(pd, n, si)
		// Model and measurement agree within binomial noise plus the
		// hard-threshold coarseness (the paper's Fig-free claim of
		// "validated via extensive experiments").
		noise := 3*math.Sqrt(empirical*(1-empirical)/trials) + 0.12
		if math.Abs(empirical-model) > noise {
			t.Fatalf("pd=%v: empirical %v vs model %v (n=%d s=%d)", pd, empirical, model, n, si)
		}
	}
}
