package experiments

import (
	"bytes"
	"testing"

	"repro/internal/vcrypt"
	"repro/internal/video"
)

func workersFixture(t *testing.T, workers int) *Fixture {
	t.Helper()
	f, err := NewFixture(Options{
		Width: 96, Height: 96, Frames: 150, Repetitions: 2,
		Seed: 1, Stations: 3, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestWorkersEquivalence is the end-to-end determinism guarantee of the
// parallel runner: a serial fixture and a Workers=4 fixture must produce
// bit-identical encoded workloads, exactly equal cell statistics on both
// the UDP and HTTP transports, and byte-identical CSV for a full table.
func TestWorkersEquivalence(t *testing.T) {
	serial := workersFixture(t, 1)
	par := workersFixture(t, 4)

	ws, err := serial.Workload(video.MotionHigh, 30)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := par.Workload(video.MotionHigh, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.Encoded) != len(wp.Encoded) {
		t.Fatalf("workload frame count %d vs %d", len(ws.Encoded), len(wp.Encoded))
	}
	for i := range ws.Encoded {
		a, b := ws.Encoded[i], wp.Encoded[i]
		if a.Type != b.Type || len(a.MBData) != len(b.MBData) {
			t.Fatalf("frame %d header mismatch between worker counts", i)
		}
		for j := range a.MBData {
			if !bytes.Equal(a.MBData[j], b.MBData[j]) {
				t.Fatalf("frame %d MB %d: parallel workload bitstream differs", i, j)
			}
		}
	}

	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	device := SamsungDevice()
	for _, tcp := range []bool{false, true} {
		cs, err := serial.runCell(ws, pol, device, tcp, false)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := par.runCell(wp, pol, device, tcp, false)
		if err != nil {
			t.Fatal(err)
		}
		if cs != cp {
			t.Fatalf("tcp=%v: cell stats differ between worker counts:\nserial:   %+v\nparallel: %+v", tcp, cs, cp)
		}
	}

	ts, err := Table2(serial)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Table2(par)
	if err != nil {
		t.Fatal(err)
	}
	var bs, bp bytes.Buffer
	if err := ts.WriteCSV(&bs); err != nil {
		t.Fatal(err)
	}
	if err := tp.WriteCSV(&bp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bp.Bytes()) {
		t.Fatalf("Table2 CSV differs between worker counts:\nserial:\n%s\nparallel:\n%s", bs.String(), bp.String())
	}
}
