// Package codec implements the predictive video codec substrate of the
// reproduction: a block-transform codec with intra-coded I-frames and
// motion-compensated P-frames arranged in the IPP...P GOP structure the
// paper assumes (Section 2), a slice packetizer that fragments frames at
// the network MTU (I-frames into many MTU-sized packets, P-frames into
// single small packets, Section 4.2.1), and a decoder with frame-copy
// error concealment matching the loss model of Section 4.3.2.
//
// The codec replaces x264/H.264 in the original testbed. It reproduces the
// properties the paper's analysis and experiments rely on: the I/P size
// asymmetry, motion-dependent P-frame information content, predictive
// decoding where losing a frame damages the rest of its GOP, and real
// bitstreams so that encrypting or dropping packets yields genuinely
// garbled pixels and measured PSNR.
package codec

import (
	"errors"
	"fmt"
)

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nbit uint
}

func (w *bitWriter) writeBit(b int) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nbit++
	if w.nbit == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit(int(v >> uint(i) & 1))
	}
}

// writeUE writes an unsigned Exp-Golomb code (as in H.264).
func (w *bitWriter) writeUE(v uint64) {
	x := v + 1
	n := uint(0)
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := uint(0); i < n; i++ {
		w.writeBit(0)
	}
	w.writeBits(x, n+1)
}

// writeSE writes a signed Exp-Golomb code.
func (w *bitWriter) writeSE(v int64) {
	var u uint64
	if v > 0 {
		u = uint64(2*v - 1)
	} else {
		u = uint64(-2 * v)
	}
	w.writeUE(u)
}

// reset clears the writer for reuse, keeping the buffer's capacity.
func (w *bitWriter) reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// bytes flushes (zero-padding the last byte) and returns the buffer.
func (w *bitWriter) bytes() []byte {
	if w.nbit > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nbit))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// errTruncated is returned when a bitstream ends prematurely; the decoder
// treats such macroblocks as lost and conceals them.
var errTruncated = errors.New("codec: truncated bitstream")

// bitReader reads bits MSB-first.
type bitReader struct {
	buf  []byte
	pos  int
	cur  byte
	nbit uint
}

func newBitReader(b []byte) *bitReader { return &bitReader{buf: b} }

func (r *bitReader) readBit() (int, error) {
	if r.nbit == 0 {
		if r.pos >= len(r.buf) {
			return 0, errTruncated
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.nbit = 8
	}
	r.nbit--
	return int(r.cur >> r.nbit & 1), nil
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// readUE reads an unsigned Exp-Golomb code.
func (r *bitReader) readUE() (uint64, error) {
	n := uint(0)
	for {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 63 {
			return 0, fmt.Errorf("codec: exp-golomb prefix too long")
		}
	}
	rest, err := r.readBits(n)
	if err != nil {
		return 0, err
	}
	return 1<<n | rest - 1, nil
}

// readSE reads a signed Exp-Golomb code.
func (r *bitReader) readSE() (int64, error) {
	u, err := r.readUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int64(u/2) + 1, nil
	}
	return -int64(u / 2), nil
}
