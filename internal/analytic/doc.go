// Package analytic implements the paper's mathematical framework (Section
// 4): the 2-state Markov-modulated Poisson arrival process that models
// I-frame bursts and P-frame singletons, phase-type service-time models
// built from the encryption/backoff/transmission components of Eq. (3), an
// exact matrix-geometric (QBD) solver for the resulting 2-MMPP/PH/1 sender
// queue (the numerical engine behind the mean-delay expression of Eq. 19),
// and the eavesdropper distortion model of Eqs. (20)-(28).
//
// Terminology follows the paper: an encryption policy P determines which
// packets are encrypted; the framework predicts (i) the mean per-packet
// delay at the sender under P and (ii) the PSNR of the video an
// eavesdropper can reconstruct under P.
//
// Equation index — where each numbered equation of the paper lives in
// this package:
//
//	Eq. (1)  R, Λ of the 2-MMPP                    MMPP2.Generator, MMPP2.RateMatrix
//	Eq. (2)  equilibrium vector π                  MMPP2.Stationary
//	Eq. (3)  service decomposition T=Te+Tb+Tt      ServiceParams (moments, LST, PH)
//	Eq. (4)  encryption-time mixture               ServiceParams.encMoments / lstEnc
//	Eq. (5)  LST of Te                             ServiceParams.lstEnc
//	Eq. (6)  geometric collision count             stats.RNG.Geometric (sampling),
//	                                               ServiceParams.backoffMoments (moments)
//	Eq. (7)  LST of Tb                             ServiceParams.lstBackoff
//	Eq. (8)  transmission-time mixture             ServiceParams.txMoments
//	Eq. (9)  LST of Tt                             ServiceParams.lstTx
//	Eq. (10) product-form service LST              ServiceParams.LST
//	Eq. (12) constant encryption LST               lstEnc with zero sigmas (tested)
//	Eq. (14) constant transmission LST             lstTx with zero sigmas (tested)
//	Eq. (15-16) Gaussian variation model           ServiceParams sigma fields
//	Eq. (17-18) Gaussian LSTs                      gaussLST via lstEnc/lstTx
//	Eq. (19) mean queueing delay E[W]              SolveQueue (QBD engine; equals
//	                                               Pollaczek-Khinchine in the Poisson
//	                                               limit, asserted by tests)
//	Eq. (20) frame success rate                    FrameSuccess
//	Eq. (21) intra-GOP distortion ramp             IntraGOPDistortion
//	Eq. (22) first-loss position probabilities     DistortionModel.ExpectedDistortion
//	Eq. (23-26) GOP state chain                    DistortionModel.ExpectedDistortion
//	                                               (reference-distance DP)
//	Eq. (27) average flow distortion               DistortionModel.ExpectedDistortion
//	Eq. (28) PSNR mapping                          PSNRFromDistortion
//
// The packet success rate p_s of Section 4.1 comes from the companion
// package internal/wifi (SolveDCF); the µAh→W conversion of Eq. (29)
// lives in internal/energy.
package analytic
