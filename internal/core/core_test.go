package core

import (
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// fixture builds a calibrated model for a small clip.
func fixture(t *testing.T, motion video.MotionLevel) (*Calibration, []*video.Frame, codec.Config) {
	t.Helper()
	clip := video.Generate(video.SceneConfig{W: 176, H: 144, Frames: 48, Motion: motion, Seed: 11})
	cfg := codec.Config{Width: 176, Height: 144, GOPSize: 12, QI: 8, QP: 10, SearchRange: 16}
	encoded, err := codec.EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := MeasureDistortion(clip, cfg, 1400)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Calibrate(encoded, cfg, 30, 1400, energy.SamsungGalaxySII(), DefaultNetwork(), dist)
	if err != nil {
		t.Fatal(err)
	}
	return cal, clip, cfg
}

func TestMeasureDistortionShapes(t *testing.T) {
	clipSlow := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 48, Motion: video.MotionLow, Seed: 11})
	clipFast := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 48, Motion: video.MotionHigh, Seed: 11})
	cfg := codec.Config{Width: 96, Height: 96, GOPSize: 12, QI: 8, QP: 10, SearchRange: 16}
	slow, err := MeasureDistortion(clipSlow, cfg, 1400)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := MeasureDistortion(clipFast, cfg, 1400)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fast motion: losing frames hurts more (higher dmax and inter-GOP
	// distortion), the content dependence of Fig. 2.
	if fast.DMax <= slow.DMax {
		t.Fatalf("fast DMax %v should exceed slow %v", fast.DMax, slow.DMax)
	}
	if fast.InterGOP.Eval(2) <= slow.InterGOP.Eval(2) {
		t.Fatalf("fast inter-GOP distortion %v should exceed slow %v",
			fast.InterGOP.Eval(2), slow.InterGOP.Eval(2))
	}
	// Inter-GOP distortion grows with distance for both.
	for _, c := range []DistortionCalibration{slow, fast} {
		if c.InterGOP.Eval(1) >= c.InterGOP.Eval(float64(c.MaxDistance)) {
			t.Fatalf("inter-GOP fit not increasing: %v vs %v",
				c.InterGOP.Eval(1), c.InterGOP.Eval(float64(c.MaxDistance)))
		}
	}
	// At this reduced test-frame size the scene generator scales the
	// object count down, so the "high" clip may score medium; it must
	// never score low, and the ordering between the two clips must hold.
	if slow.Motion != video.MotionLow || fast.Motion == video.MotionLow {
		t.Fatalf("motion classification wrong: slow=%v fast=%v", slow.Motion, fast.Motion)
	}
}

func TestMeasureDistortionTooShort(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 10, Motion: video.MotionLow, Seed: 1})
	cfg := codec.Config{Width: 96, Height: 96, GOPSize: 12, QI: 8, QP: 10}
	if _, err := MeasureDistortion(clip, cfg, 1400); err == nil {
		t.Fatal("short clip should fail")
	}
}

func TestCalibrateBasics(t *testing.T) {
	cal, _, cfg := fixture(t, video.MotionLow)
	if cal.Clip.GOPSize != cfg.GOPSize {
		t.Fatal("GOP size lost")
	}
	if cal.Arrival.Lambda1 <= cal.Arrival.Lambda2 {
		t.Fatalf("I-burst rate %v should exceed P rate %v", cal.Arrival.Lambda1, cal.Arrival.Lambda2)
	}
	if cal.DCF.SuccessRate <= 0 || cal.DCF.SuccessRate >= 1 {
		t.Fatalf("ps = %v", cal.DCF.SuccessRate)
	}
	if cal.TxMeanI <= cal.TxMeanP {
		t.Fatal("MTU-sized I packets must take longer to transmit")
	}
}

func TestPredictPolicyShapes(t *testing.T) {
	cal, _, _ := fixture(t, video.MotionLow)
	get := func(m vcrypt.Mode) Prediction {
		pr, err := cal.Predict(vcrypt.Policy{Mode: m, Alg: vcrypt.AES256})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return pr
	}
	none := get(vcrypt.ModeNone)
	iOnly := get(vcrypt.ModeIFrames)
	all := get(vcrypt.ModeAll)

	// Delay ordering.
	if !(none.MeanSojourn < iOnly.MeanSojourn && iOnly.MeanSojourn < all.MeanSojourn) {
		t.Fatalf("delay ordering: %v %v %v", none.MeanSojourn, iOnly.MeanSojourn, all.MeanSojourn)
	}
	// Confidentiality ordering: encrypting I-frames crushes the
	// eavesdropper for slow motion; encrypting everything is at least as
	// strong.
	// The synthetic slow clip's dynamic range is modest, so the absolute
	// dB drop is smaller than the paper's clips; the ordering is what
	// matters (TestPolicyContentInteraction checks the content coupling).
	if !(iOnly.EavesdropperPSNR < none.EavesdropperPSNR-2) {
		t.Fatalf("I policy should slash eavesdropper PSNR: %v vs %v",
			iOnly.EavesdropperPSNR, none.EavesdropperPSNR)
	}
	if all.EavesdropperPSNR > iOnly.EavesdropperPSNR+1e-9 {
		t.Fatalf("all should not be weaker than I: %v vs %v",
			all.EavesdropperPSNR, iOnly.EavesdropperPSNR)
	}
	// The receiver is unaffected by the policy.
	if none.ReceiverPSNR != all.ReceiverPSNR {
		t.Fatal("receiver PSNR must not depend on the policy")
	}
	// Power ordering.
	if !(none.AveragePowerW < iOnly.AveragePowerW && iOnly.AveragePowerW < all.AveragePowerW) {
		t.Fatalf("power ordering: %v %v %v", none.AveragePowerW, iOnly.AveragePowerW, all.AveragePowerW)
	}
	// Encrypted fractions.
	if none.EncryptedFraction != 0 || all.EncryptedFraction != 1 {
		t.Fatal("encrypted fractions wrong")
	}
	if iOnly.EncryptedFraction <= 0 || iOnly.EncryptedFraction >= 1 {
		t.Fatalf("I fraction %v", iOnly.EncryptedFraction)
	}
}

func TestPlanPicksCheapestMeetingTarget(t *testing.T) {
	cal, _, _ := fixture(t, video.MotionLow)
	candidates := []vcrypt.Policy{
		{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256},
		{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256},
		{Mode: vcrypt.ModePFrames, Alg: vcrypt.AES256},
		{Mode: vcrypt.ModeAll, Alg: vcrypt.AES256},
	}
	// Target: eavesdropper PSNR at most 20 dB (unwatchable).
	best, all, err := Plan(cal, candidates, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(candidates) {
		t.Fatal("missing predictions")
	}
	if best.Policy.Mode == vcrypt.ModeNone {
		t.Fatal("plaintext cannot meet a confidentiality target")
	}
	if best.EavesdropperPSNR > 20 {
		t.Fatalf("chosen policy misses target: %v", best.EavesdropperPSNR)
	}
	// The chosen policy must be the cheapest among those meeting it.
	for _, pr := range all {
		if pr.EavesdropperPSNR <= 20 && pr.MeanSojourn < best.MeanSojourn {
			t.Fatalf("cheaper qualifying policy %v overlooked", pr.Policy.Name())
		}
	}
}

func TestPlanImpossibleTarget(t *testing.T) {
	cal, _, _ := fixture(t, video.MotionLow)
	candidates := []vcrypt.Policy{{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}}
	_, _, err := Plan(cal, candidates, 5)
	if !errors.Is(err, ErrNoPolicyMeetsTarget) {
		t.Fatalf("want ErrNoPolicyMeetsTarget, got %v", err)
	}
	if _, _, err := Plan(cal, nil, 20); err == nil {
		t.Fatal("empty candidates should fail")
	}
}

func TestPredictRejectsBadPolicy(t *testing.T) {
	cal, _, _ := fixture(t, video.MotionLow)
	if _, err := cal.Predict(vcrypt.Policy{Mode: vcrypt.Mode(99)}); err == nil {
		t.Fatal("bad policy should fail")
	}
}

func TestProfileForShapes(t *testing.T) {
	low := ProfileFor(video.MotionLow)
	high := ProfileFor(video.MotionHigh)
	if err := low.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := high.Validate(); err != nil {
		t.Fatal(err)
	}
	if high.DMax <= low.DMax || high.SI < low.SI {
		t.Fatal("stored profiles must preserve the fast>slow severity ordering")
	}
}

func TestCalibrateValidation(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 24, Motion: video.MotionLow, Seed: 2})
	cfg := codec.Config{Width: 96, Height: 96, GOPSize: 12, QI: 8, QP: 10, SearchRange: 16}
	encoded, _ := codec.EncodeSequence(clip, cfg)
	dist := ProfileFor(video.MotionLow)
	if _, err := Calibrate(encoded, cfg, 0, 1400, energy.SamsungGalaxySII(), DefaultNetwork(), dist); err == nil {
		t.Fatal("zero fps should fail")
	}
	if _, err := Calibrate(nil, cfg, 30, 1400, energy.SamsungGalaxySII(), DefaultNetwork(), dist); err == nil {
		t.Fatal("empty clip should fail")
	}
}

func TestPredictHeaderOnlyCheaper(t *testing.T) {
	cal, _, _ := fixture(t, video.MotionHigh)
	full := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.TripleDES}
	hdr := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.TripleDES, HeaderOnlyBytes: 64}
	pf, err := cal.Predict(full)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := cal.Predict(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if ph.MeanSojourn >= pf.MeanSojourn {
		t.Fatalf("header-only predicted delay %v should undercut full %v", ph.MeanSojourn, pf.MeanSojourn)
	}
	if ph.AveragePowerW >= pf.AveragePowerW {
		t.Fatalf("header-only predicted power %v should undercut full %v", ph.AveragePowerW, pf.AveragePowerW)
	}
	// Confidentiality prediction is identical: the same packets become
	// erasures.
	if ph.EavesdropperPSNR != pf.EavesdropperPSNR {
		t.Fatalf("eavesdropper PSNR should match: %v vs %v", ph.EavesdropperPSNR, pf.EavesdropperPSNR)
	}
}

func TestPredictUniformQAblation(t *testing.T) {
	cal, _, _ := fixture(t, video.MotionLow)
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	perClass, err := cal.Predict(pol)
	if err != nil {
		t.Fatal(err)
	}
	cal.UniformQEavesdropper = true
	uniform, err := cal.Predict(pol)
	cal.UniformQEavesdropper = false
	if err != nil {
		t.Fatal(err)
	}
	// Per-class treats every I packet as an erasure (GOPs unrecoverable);
	// the literal uniform form spreads the loss and predicts much less
	// damage — the divergence documented in EXPERIMENTS.md.
	if perClass.EavesdropperPSNR >= uniform.EavesdropperPSNR {
		t.Fatalf("per-class (%v dB) should predict stronger protection than uniform-q (%v dB)",
			perClass.EavesdropperPSNR, uniform.EavesdropperPSNR)
	}
}

func TestDistortionCalibrationValidate(t *testing.T) {
	good := ProfileFor(video.MotionLow)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.DMin = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative DMin should fail")
	}
	bad = good
	bad.DMax = good.DMin - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("DMax < DMin should fail")
	}
	bad = good
	bad.InterGOP = stats.Polynomial{}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing polynomial should fail")
	}
	bad = good
	bad.SI = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative sensitivity should fail")
	}
}

func TestMOSBuckets(t *testing.T) {
	cases := map[float64]int{40: 5, 35: 4, 28: 3, 22: 2, 10: 1}
	for psnr, want := range cases {
		if got := mosFromPSNR(psnr); got != want {
			t.Fatalf("mos(%v) = %d want %d", psnr, got, want)
		}
	}
}
