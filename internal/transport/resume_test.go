package transport

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/evalvid"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

func TestBackoffDeterministicAndCapped(t *testing.T) {
	rp := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 160 * time.Millisecond, Seed: 7}
	a, b := NewBackoff(rp), NewBackoff(rp)
	for i := 0; i < 12; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("schedules diverged at retry %d: %v vs %v", i, ga, gb)
		}
		if max := time.Duration(float64(160*time.Millisecond) * 1.2); ga > max {
			t.Fatalf("retry %d gap %v above jittered cap %v", i, ga, max)
		}
		if ga <= 0 {
			t.Fatalf("retry %d gap %v not positive", i, ga)
		}
	}
	// A different seed jitters differently.
	c := NewBackoff(RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 160 * time.Millisecond, Seed: 8})
	same := true
	a2 := NewBackoff(rp)
	for i := 0; i < 8; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestBackoffExplicitZeroJitter pins the Jitter(0) semantics: an
// explicit zero fraction disables jitter entirely (it must not be
// silently replaced by the 0.2 default), so the gap sequence is exactly
// the nominal capped-exponential one.
func TestBackoffExplicitZeroJitter(t *testing.T) {
	rp := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, JitterFrac: Jitter(0), Seed: 99}
	b := NewBackoff(rp)
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("gap %d = %v, want exactly %v (explicit zero jitter must stay zero)", i, got, w)
		}
	}
	// The caller's value must not be rewritten by withDefaults.
	if *rp.JitterFrac != 0 {
		t.Fatalf("caller's JitterFrac mutated to %g", *rp.JitterFrac)
	}
	// nil still selects the default: the first gap is jittered away from
	// the nominal base for almost every seed (7 is one of them).
	d := NewBackoff(RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 7})
	if got := d.Next(); got == 10*time.Millisecond {
		t.Fatalf("nil JitterFrac produced an unjittered gap %v", got)
	}
}

func TestBackoffResetRestartsGrowth(t *testing.T) {
	rp := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second, JitterFrac: Jitter(0), Seed: 1}
	b := NewBackoff(rp)
	b.Next()
	second := b.Next()
	if second != 20*time.Millisecond {
		t.Fatalf("second gap %v, want 20ms", second)
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("gap after reset %v, want base 10ms", got)
	}
}

func TestServerReportsResumePoint(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	client := &http.Client{}
	next, err := queryNextSeq(client, hs.URL, "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if next != 0 {
		t.Fatalf("fresh server next %d", next)
	}

	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	half := len(segs) / 2
	var body bytes.Buffer
	for _, seg := range segs[:half] {
		if err := WriteSegment(&body, seg.seq, seg.encrypted, seg.payload); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(hs.URL, "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	next, err = queryNextSeq(client, hs.URL, "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if next != uint64(half) {
		t.Fatalf("after %d segments server reports next %d", half, next)
	}
	if srv.NextSeq() != uint64(half) {
		t.Fatalf("NextSeq %d", srv.NextSeq())
	}
}

// decodeServer decodes the server's reassembled clip.
func decodeServer(t *testing.T, srv *HTTPUploadServer, cfg codec.Config, total int) []*video.Frame {
	t.Helper()
	frames, err := codec.DecodeSequence(srv.Frames(total), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

func framesEqual(a, b []*video.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Y, b[i].Y) || !bytes.Equal(a[i].Cb, b[i].Cb) || !bytes.Equal(a[i].Cr, b[i].Cr) {
			return false
		}
	}
	return true
}

// TestChaosOutageMidUploadResumes is the headline chaos test: the link is
// cut mid-upload (after a deterministic byte count) and goes 100%-lossy
// for a window; the client must retry with capped backoff, learn the
// server's highest contiguous seq, resume without re-sending acknowledged
// segments, and the reassembled clip must decode bit-identically to a
// no-fault transfer.
func TestChaosOutageMidUploadResumes(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIPlusFracP, FracP: 0.2, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionMedium, pol)

	// Reference: the same upload over a clean link.
	cleanSrv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	cleanHS := httptest.NewServer(cleanSrv)
	defer cleanHS.Close()
	if _, err := ResumableHTTPUpload(s, cleanHS.URL, nil, RetryPolicy{Seed: 1}, nil); err != nil {
		t.Fatal(err)
	}
	want := decodeServer(t, cleanSrv, s.Config, len(s.Encoded))

	// Faulty link: sever after roughly half the clip's bytes, then a
	// 100%-loss window.
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	segs, err := buildSegments(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	var totalBytes int
	for _, seg := range segs {
		totalBytes += segmentHeaderSize + len(seg.payload)
	}
	proxy, err := netem.NewFlakyProxy(hs.Listener.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetBlackout(200 * time.Millisecond)
	proxy.SetCutAfter(int64(totalBytes / 2))

	// Cross-check the obs counters against the uploader's own report
	// (snapshots taken after the clean reference upload above).
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	attempts0 := mUploadAttempts.Value()
	resumes0 := mUploadResumes.Value()
	backoff0 := mUploadBackoffSeconds.Value()
	srvDups0 := mServerDuplicates.Value()

	rp := RetryPolicy{
		MaxAttempts:    10,
		BaseBackoff:    25 * time.Millisecond,
		MaxBackoff:     150 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
		Seed:           42,
	}
	rep, err := ResumableHTTPUpload(s, "http://"+proxy.Addr(), nil, rp, nil)
	if err != nil {
		t.Fatalf("upload did not survive the outage: %v (report %+v)", err, rep)
	}
	if a := mUploadAttempts.Value() - attempts0; a != int64(rep.Attempts) {
		t.Fatalf("obs counted %d attempts, report %d", a, rep.Attempts)
	}
	if r := mUploadResumes.Value() - resumes0; r != int64(rep.Resumes) {
		t.Fatalf("obs counted %d resumes, report %d", r, rep.Resumes)
	}
	if b := mUploadBackoffSeconds.Value() - backoff0; b <= 0 || b > rep.BackoffTotal.Seconds()+1e-9 {
		t.Fatalf("obs backoff %.3fs vs report %v", b, rep.BackoffTotal)
	}
	if d := mServerDuplicates.Value() - srvDups0; d != 0 {
		t.Fatalf("obs counted %d server duplicates on a resume-only run", d)
	}
	if rep.Attempts < 2 {
		t.Fatalf("no retry recorded: %+v", rep)
	}
	if rep.Resumes < 1 {
		t.Fatalf("no resume recorded: %+v", rep)
	}
	if rep.BackoffTotal <= 0 {
		t.Fatalf("no backoff recorded: %+v", rep)
	}
	// Resuming from the acknowledged seq must not re-send acknowledged
	// segments...
	if d := srv.DuplicateSegments(); d != 0 {
		t.Fatalf("server saw %d duplicate segments", d)
	}
	// ...so the wire overhead is bounded by one partial replay per cut,
	// far below a full re-send per attempt.
	if rep.Segments >= 2*len(segs) {
		t.Fatalf("wire segments %d vs clip %d: resume re-sent too much", rep.Segments, len(segs))
	}
	got := decodeServer(t, srv, s.Config, len(s.Encoded))
	if !framesEqual(want, got) {
		t.Fatal("chaos-transfer reconstruction differs from no-fault transfer")
	}
	if refused, severed := proxy.Stats(); refused+severed == 0 {
		t.Fatal("proxy injected no faults — test proved nothing")
	}
}

// TestDeadlineExhaustionDowngradesPolicy verifies the graceful-degradation
// hook: a link that stays dark past the deadline must trigger a policy
// downgrade (here I+20%P → I-only) and the transfer must then finish
// instead of failing.
func TestDeadlineExhaustionDowngradesPolicy(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES256}
	s, clip := testSession(t, video.MotionLow, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	proxy, err := netem.NewFlakyProxy(hs.Listener.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// The very first bytes hit a cut followed by a blackout longer than
	// the transfer deadline, so at least one deadline cycle must expire
	// while the link is dark; each degradation earns a fresh deadline
	// and the ladder (all → I+20%P → I) is deep enough to outlive the
	// blackout.
	proxy.SetBlackout(150 * time.Millisecond)
	proxy.SetCutAfter(64)

	rp := RetryPolicy{
		MaxAttempts:    6,
		BaseBackoff:    30 * time.Millisecond,
		MaxBackoff:     120 * time.Millisecond,
		AttemptTimeout: 2 * time.Second,
		Deadline:       120 * time.Millisecond,
		Seed:           7,
	}
	deg := &PolicyDegrader{}
	rep, err := ResumableHTTPUpload(s, "http://"+proxy.Addr(), nil, rp, deg)
	if err != nil {
		t.Fatalf("deadline exhaustion failed the transfer instead of degrading: %v (%+v)", err, rep)
	}
	if rep.Downgrades < 1 {
		t.Fatalf("no downgrade recorded: %+v", rep)
	}
	if rep.FinalPolicy.Mode == vcrypt.ModeAll {
		t.Fatalf("final policy %v did not move down the ladder", rep.FinalPolicy)
	}
	// The receiver still reconstructs the clip (encryption downgrades
	// never hurt the legitimate receiver's quality).
	got := decodeServer(t, srv, s.Config, len(s.Encoded))
	q, err := evalvid.Evaluate(clip, got)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR < 30 {
		t.Fatalf("post-downgrade PSNR %.1f", q.PSNR)
	}
}

// TestDegradationReencodeRestarts drives the ladder to its last rung: the
// policy is already at the I-only floor, so the degrader re-encodes the
// clip with coarser quantisers and the upload restarts under a fresh
// sequence epoch.
func TestDegradationReencodeRestarts(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeIFrames, Alg: vcrypt.AES128}
	s, clip := testSession(t, video.MotionLow, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	proxy, err := netem.NewFlakyProxy(hs.Listener.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetBlackout(240 * time.Millisecond)
	proxy.SetCutAfter(64)

	// Jitter-free schedule so the test is sleep-dominated rather than
	// wall-clock-sensitive: attempts at ~0/20/80ms all land inside the
	// 240ms blackout (exhausting MaxAttempts and forcing the re-encode
	// restart), and the post-restart schedule stretches to ~360ms, past
	// the blackout's end, so the restarted upload always gets through.
	rp := RetryPolicy{
		MaxAttempts:    3,
		BaseBackoff:    20 * time.Millisecond,
		MaxBackoff:     180 * time.Millisecond,
		Multiplier:     3,
		JitterFrac:     Jitter(0),
		AttemptTimeout: 2 * time.Second,
		Seed:           3,
	}
	deg := &PolicyDegrader{Raw: clip}
	rep, err := ResumableHTTPUpload(s, "http://"+proxy.Addr(), nil, rp, deg)
	if err != nil {
		t.Fatalf("re-encode rung failed the transfer: %v (%+v)", err, rep)
	}
	if rep.Restarts != 1 {
		t.Fatalf("restarts %d, want 1: %+v", rep.Restarts, rep)
	}
	if srv.NextSeq() < 1<<32 {
		t.Fatalf("server never moved to the restart epoch: next %d", srv.NextSeq())
	}
	// The degraded clip still decodes to something watchable.
	frames := srv.Frames(len(clip))
	for i, f := range frames {
		if f == nil {
			t.Fatalf("frame %d missing after restart", i)
		}
	}
	cfgGot := s.Config
	cfgGot.QI *= 1.6
	cfgGot.QP *= 1.6
	got, err := codec.DecodeSequence(frames, cfgGot)
	if err != nil {
		t.Fatal(err)
	}
	q, err := evalvid.Evaluate(clip, got)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR < 25 {
		t.Fatalf("re-encoded reconstruction PSNR %.1f too low", q.PSNR)
	}
}

// TestResumableUploadCleanLink sanity-checks the no-fault path: one
// attempt, no resumes, same reconstruction as LiveHTTPUpload.
func TestResumableUploadCleanLink(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES128}
	s, clip := testSession(t, video.MotionLow, pol)
	srv, err := NewHTTPUploadServer(s.Config, pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	rep, err := ResumableHTTPUpload(s, hs.URL, nil, RetryPolicy{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 1 || rep.Resumes != 0 || rep.Downgrades != 0 || rep.Restarts != 0 {
		t.Fatalf("clean link report %+v", rep)
	}
	got := decodeServer(t, srv, s.Config, len(s.Encoded))
	q, err := evalvid.Evaluate(clip, got)
	if err != nil {
		t.Fatal(err)
	}
	if q.PSNR < 30 {
		t.Fatalf("PSNR %.1f", q.PSNR)
	}
}

// TestResumableUploadGivesUpWithoutDegrader confirms the failure path is
// still reachable: a permanently dark link with no degrader must error
// after MaxAttempts, not loop forever.
func TestResumableUploadGivesUpWithoutDegrader(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES128}
	s, _ := testSession(t, video.MotionLow, pol)
	s.Encoded = s.Encoded[:2]
	rp := RetryPolicy{
		MaxAttempts:    3,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		AttemptTimeout: 300 * time.Millisecond,
		Seed:           1,
	}
	// Nothing listens on this port.
	_, err := ResumableHTTPUpload(s, "http://127.0.0.1:1", nil, rp, nil)
	if err == nil {
		t.Fatal("upload to a dead address succeeded")
	}
}
