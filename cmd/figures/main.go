// Command figures regenerates the tables and figures of the paper's
// evaluation section on the reproduction's substrates. Each figure prints
// as an aligned text table whose rows mirror the bars/series of the
// original plot; EXPERIMENTS.md records the comparison against the
// published results.
//
// Usage:
//
//	figures -quick all            # every figure at reduced scale
//	figures fig4 fig7             # specific figures, default scale
//	figures -full -out results/ all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

type figureFn func(*experiments.Fixture) (*experiments.Table, error)

func main() {
	quick := flag.Bool("quick", false, "reduced clip size/repetitions (seconds per figure)")
	full := flag.Bool("full", false, "paper-scale CIF clips and 20 repetitions (slow)")
	outDir := flag.String("out", "figures-out", "directory for file artifacts (fig6 screenshots)")
	csvOut := flag.Bool("csv", false, "also write each table as <out>/<figure>.csv")
	frames := flag.Int("frames", 0, "override clip length in frames")
	reps := flag.Int("reps", 0, "override repetitions")
	workers := flag.Int("workers", 0, "worker goroutines for cells/repetitions/macroblock rows (0 = NumCPU, 1 = serial; output is identical at any setting)")
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	} else if !*quick {
		// Default: quick geometry, a few repetitions.
		opts = experiments.Quick()
		opts.Repetitions = 5
	}
	if *frames > 0 {
		opts.Frames = *frames
	}
	if *reps > 0 {
		opts.Repetitions = *reps
	}
	if *workers > 0 {
		opts.Workers = *workers
	}

	fixture, err := experiments.NewFixture(opts)
	if err != nil {
		fatal(err)
	}

	figures := map[string]figureFn{
		"table1": func(*experiments.Fixture) (*experiments.Table, error) { return experiments.Table1(), nil },
		"fig2":   experiments.Fig2,
		"fig4":   experiments.Fig4,
		"fig5":   experiments.Fig5,
		"fig6": func(f *experiments.Fixture) (*experiments.Table, error) {
			return experiments.Fig6(f, *outDir)
		},
		"fig7":       experiments.Fig7,
		"fig8":       experiments.Fig8,
		"fig9":       experiments.Fig9,
		"table2":     experiments.Table2,
		"fig10":      experiments.Fig10,
		"fig11":      experiments.Fig11,
		"fig12":      experiments.Fig12,
		"fig13":      experiments.Fig13,
		"fig14":      experiments.Fig14,
		"fig15":      experiments.Fig15,
		"extensions": experiments.ExtensionsTable,
		"snrsweep":   experiments.SNRSweepTable,
		"fastcipher": experiments.FastCipherTable,
	}
	order := []string{
		"table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"table2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"extensions", "snrsweep", "fastcipher",
	}

	requested := flag.Args()
	if len(requested) == 0 {
		fmt.Fprintln(os.Stderr, "no figures requested; known figures:")
		names := make([]string, 0, len(figures))
		for n := range figures {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintln(os.Stderr, " ", strings.Join(names, " "), "all")
		os.Exit(2)
	}
	var run []string
	for _, r := range requested {
		if r == "all" {
			run = append(run, order...)
			continue
		}
		if _, ok := figures[r]; !ok {
			fatal(fmt.Errorf("unknown figure %q", r))
		}
		run = append(run, r)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	resultPath := filepath.Join(*outDir, "results.txt")
	resultFile, err := os.Create(resultPath)
	if err != nil {
		fatal(err)
	}
	defer resultFile.Close()

	fmt.Printf("options: %dx%d, %d frames, %d repetitions, %d stations\n\n",
		opts.Width, opts.Height, opts.Frames, opts.Repetitions, opts.Stations)
	for _, name := range run {
		start := time.Now()
		table, err := figures[name](fixture)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if err := table.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
		if err := table.Fprint(resultFile); err != nil {
			fatal(err)
		}
		if *csvOut {
			cf, err := os.Create(filepath.Join(*outDir, name+".csv"))
			if err != nil {
				fatal(err)
			}
			if err := table.WriteCSV(cf); err != nil {
				cf.Close()
				fatal(err)
			}
			if err := cf.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("tables also written to %s\n", resultPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
