// Package transport implements the sender/receiver/eavesdropper pipeline
// of Fig. 3: the producer reads video segments into a queue, the consumer
// applies the encryption policy and hands packets to the network, the
// legitimate receiver decrypts marked packets and reconstructs the clip,
// and the eavesdropper overhears the broadcast medium but can only use
// plaintext packets.
//
// Two backends are provided. The simulated backend (RunUDP, RunHTTP) runs
// the whole pipeline in virtual time against the 802.11 medium model and
// the device energy/crypto model — this is the "testbed" that regenerates
// the paper's figures quickly and deterministically, with real ciphers
// garbling real bitstreams. The live backend (LiveUDP*, LiveHTTP*) moves
// the same packets over real sockets for the runnable examples and the
// CLI.
package transport

import (
	"fmt"

	"repro/internal/audio"
	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/vcrypt"
	"repro/internal/wifi"
)

// Session describes one video transfer experiment.
type Session struct {
	// Codec configuration of the encoded clip.
	Config codec.Config
	// Encoded clip (the producer's input).
	Encoded []*codec.EncodedFrame
	// FPS is the capture/playout rate (the paper's clips run at 30).
	FPS float64
	// MTU bounds packet payloads (1400 matches the testbed's WiFi MTU
	// after headers).
	MTU int
	// Policy is the encryption policy under test.
	Policy vcrypt.Policy
	// Key is the pre-established symmetric key (Section 3).
	Key []byte
	// Device provides crypto timing and power.
	Device energy.Profile
	// Medium is the shared 802.11 channel (simulated backend).
	Medium *wifi.Medium
	// Audio, when non-nil, muxes an always-encrypted audio track into the
	// stream (the paper's Section 3 expectation that audio is cheap
	// enough to encrypt entirely; simulated backend only).
	Audio *audio.Track
	// DiskReadGap is the time between successive packet reads of one
	// frame from storage into the queue (the producer thread of Fig. 3);
	// it shapes the within-burst interarrival times of the 2-MMPP.
	DiskReadGap float64
	// PadToMTU pads every payload to the MTU before (any) encryption —
	// the traffic-analysis countermeasure of Section 3 that hides the
	// I/P size signature from a passive observer (internal/traffic). The
	// slice format ignores trailing padding, so only the wire size, the
	// crypto cost and the airtime change.
	PadToMTU bool
	// SessionID names this transfer on multi-tenant receivers: HTTP
	// uploads carry it in SessionHeader so one HTTPUploadServer can
	// demultiplex many concurrent clips. Empty selects the default
	// session (the original single-flow behaviour).
	SessionID string
	// Unpaced switches from real-time streaming (packets released on the
	// frame-capture schedule) to an as-fast-as-possible file upload: the
	// producer reads the whole clip back to back, so the pipeline is
	// busy end to end. The paper's power measurements ride on this mode
	// (the CPU is pegged for the duration of the transfer); its delay
	// figures use the paced mode (a stable queue, which is what the
	// 2-MMPP/G/1 model describes).
	Unpaced bool
}

// Validate checks the session.
func (s Session) Validate() error {
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if len(s.Encoded) == 0 {
		return fmt.Errorf("transport: empty clip")
	}
	if s.FPS <= 0 {
		return fmt.Errorf("transport: FPS %g", s.FPS)
	}
	if s.MTU < 64 {
		return fmt.Errorf("transport: MTU %d too small", s.MTU)
	}
	if err := s.Policy.Validate(); err != nil {
		return err
	}
	if len(s.Key) != s.Policy.Alg.KeySize() {
		return fmt.Errorf("transport: key size %d does not match %v", len(s.Key), s.Policy.Alg)
	}
	if s.DiskReadGap < 0 {
		return fmt.Errorf("transport: negative disk read gap")
	}
	return nil
}

// DefaultDiskReadGap is the default producer gap between packets of one
// frame (50 us: flash-storage page reads plus queue bookkeeping).
const DefaultDiskReadGap = 50e-6

// PacketRecord traces one packet through the pipeline, the per-packet
// measurements the paper extracts from its instrumented app plus tcpdump.
type PacketRecord struct {
	Seq         int
	FrameNumber int
	IFrame      bool
	Audio       bool
	Encrypted   bool
	Size        int // payload bytes

	Arrival      float64 // enqueued by the producer
	ServiceStart float64 // consumer picked it up
	Departure    float64 // cleared the channel

	EncryptTime float64
	Backoff     float64
	Airtime     float64
	Attempts    int

	ReceiverGot bool
	EavesGot    bool // captured by the eavesdropper (may still be useless if encrypted)
}

// Wait returns the queueing delay (Eq. 19's W).
func (r PacketRecord) Wait() float64 { return r.ServiceStart - r.Arrival }

// Sojourn returns the total per-packet delay the figures report.
func (r PacketRecord) Sojourn() float64 { return r.Departure - r.Arrival }

// Result of a transfer run.
type Result struct {
	Records  []PacketRecord
	Duration float64 // stream duration (last departure vs playout end)

	MeanWait    float64
	MeanSojourn float64
	MeanService float64

	// Receiver and eavesdropper reconstructions (encoded domain; decode
	// with codec.DecodeSequence).
	ReceiverFrames []*codec.EncodedFrame
	EavesFrames    []*codec.EncodedFrame

	// Fractions for calibration/bookkeeping.
	EncryptedFraction float64
	ReceiverLossRate  float64

	// Audio reconstructions when the session carries a track (frames
	// with nil Data were lost or, at the eavesdropper, encrypted).
	ReceiverAudio []audio.Frame
	EavesAudio    []audio.Frame

	// Energy integrated over Duration.
	AveragePowerW float64
	EnergyJ       float64
}

// SojournPercentile returns the p-quantile (0..1) of the per-packet
// sojourn times — the tail-latency view a playout buffer cares about.
func (r *Result) SojournPercentile(p float64) float64 {
	if len(r.Records) == 0 {
		return 0
	}
	xs := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		xs[i] = rec.Sojourn()
	}
	return stats.Percentile(xs, p)
}

// Goodput returns the application bytes per second the receiver actually
// obtained over the stream duration.
func (r *Result) Goodput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	var bytes int
	for _, rec := range r.Records {
		if rec.ReceiverGot {
			bytes += rec.Size
		}
	}
	return float64(bytes) / r.Duration
}
