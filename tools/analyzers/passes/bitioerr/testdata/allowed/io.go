// Testdata for the bitioerr pass: both marker spellings suppress, on
// the offending line or the line directly above.
package iodemo

import "errors"

type bitWriter struct{ n int }

func (w *bitWriter) WriteBits(v uint64, width int) error {
	if width < 0 {
		return errors.New("iodemo: negative width")
	}
	w.n += width
	return nil
}

func annotated(w *bitWriter) {
	w.WriteBits(1, 2) //lint:allow bitioerr teardown is best-effort in this demo
	w.WriteBits(3, 4) //nolint:errcheck // the legacy marker spelling is honoured as an alias
	//lint:allow bitioerr the marker may sit on the line above
	w.WriteBits(5, 6)
}
