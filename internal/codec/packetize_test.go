package codec

import (
	"testing"
	"testing/quick"

	"repro/internal/video"
)

const testMTU = 1400

func encodeOne(t *testing.T, motion video.MotionLevel) ([]*video.Frame, []*EncodedFrame, Config) {
	t.Helper()
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 12, Motion: motion, Seed: 21})
	cfg := smallConfig(6)
	encoded, err := EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return clip, encoded, cfg
}

func TestPacketizeRespectsMTU(t *testing.T) {
	_, encoded, _ := encodeOne(t, video.MotionMedium)
	for _, ef := range encoded {
		pkts, err := Packetize(ef, testMTU)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) == 0 {
			t.Fatal("frame produced no packets")
		}
		for _, p := range pkts {
			if p.MBCount > 1 && len(p.Payload) > testMTU {
				t.Fatalf("multi-MB packet of %d bytes exceeds MTU", len(p.Payload))
			}
		}
	}
}

func TestPacketizeCoversAllMacroblocks(t *testing.T) {
	_, encoded, cfg := encodeOne(t, video.MotionHigh)
	total := cfg.MBCols() * cfg.MBRows()
	for _, ef := range encoded {
		pkts, err := Packetize(ef, testMTU)
		if err != nil {
			t.Fatal(err)
		}
		covered := make([]bool, total)
		for _, p := range pkts {
			for i := p.MBStart; i < p.MBStart+p.MBCount; i++ {
				if covered[i] {
					t.Fatalf("macroblock %d covered twice", i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("macroblock %d not covered", i)
			}
		}
	}
}

func TestIFramesFragmentPFramesDoNot(t *testing.T) {
	_, encoded, _ := encodeOne(t, video.MotionLow)
	for _, ef := range encoded {
		pkts, _ := Packetize(ef, testMTU)
		if ef.Type == IFrame && len(pkts) < 2 {
			t.Fatalf("I-frame of %d bytes produced only %d packets", ef.Size(), len(pkts))
		}
		if ef.Type == PFrame && len(pkts) != 1 {
			t.Fatalf("slow-motion P-frame of %d bytes fragmented into %d packets", ef.Size(), len(pkts))
		}
	}
}

func TestReassembleLossless(t *testing.T) {
	clip, encoded, cfg := encodeOne(t, video.MotionMedium)
	re, err := NewReassembler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range encoded {
		pkts, _ := Packetize(ef, testMTU)
		for _, p := range pkts {
			if err := re.Add(p.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	frames := re.Frames(len(encoded))
	decoded, err := DecodeSequence(frames, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := DecodeSequence(encoded, cfg)
	for i := range decoded {
		if video.MSE(decoded[i], want[i]) != 0 {
			t.Fatalf("frame %d differs after packetize/reassemble", i)
		}
	}
	// The original clip should be well represented too.
	if psnr := video.SequencePSNR(clip, decoded); psnr < 30 {
		t.Fatalf("PSNR after lossless transport %.2f", psnr)
	}
}

func TestReassembleWithLossConcealsOnly(t *testing.T) {
	_, encoded, cfg := encodeOne(t, video.MotionMedium)
	re, _ := NewReassembler(cfg)
	dropped := 0
	for _, ef := range encoded {
		pkts, _ := Packetize(ef, testMTU)
		for i, p := range pkts {
			if ef.Type == IFrame && i%3 == 0 {
				dropped++
				continue // drop every third I-frame slice
			}
			if err := re.Add(p.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	if dropped == 0 {
		t.Fatal("test expected to drop some slices")
	}
	frames := re.Frames(len(encoded))
	decoded, err := DecodeSequence(frames, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(encoded) {
		t.Fatal("frame count changed")
	}
}

func TestParsePacketHeader(t *testing.T) {
	_, encoded, _ := encodeOne(t, video.MotionLow)
	pkts, _ := Packetize(encoded[0], testMTU)
	p, err := ParsePacket(pkts[1].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if p.FrameNumber != 0 || p.Type != IFrame || p.MBStart != pkts[1].MBStart || p.MBCount != pkts[1].MBCount {
		t.Fatalf("parsed header %+v vs %+v", p, pkts[1])
	}
	if !p.IsIFrame() {
		t.Fatal("IsIFrame wrong")
	}
}

func TestParsePacketGarbage(t *testing.T) {
	// Random bytes must never panic, only error or parse benignly.
	f := func(data []byte) bool {
		if _, err := ParsePacket(data); err != nil {
			return true
		}
		_, _, err := SliceMBs(data)
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerRejectsOutOfRange(t *testing.T) {
	_, _, cfg := encodeOne(t, video.MotionLow)
	re, _ := NewReassembler(cfg)
	// A slice claiming an out-of-range macroblock index must be rejected.
	big := &EncodedFrame{Number: 0, Type: IFrame, MBData: make([][]byte, 100000)}
	big.MBData[99999] = []byte{1}
	payload := AppendSlice(nil, big, 99999, 1)
	if err := re.Add(payload); err == nil {
		t.Fatal("out-of-range slice should be rejected")
	}
}

func TestPacketizeTinyMTU(t *testing.T) {
	_, encoded, _ := encodeOne(t, video.MotionLow)
	if _, err := Packetize(encoded[0], 10); err == nil {
		t.Fatal("tiny MTU should fail")
	}
}

func TestAnalyzeClipStats(t *testing.T) {
	_, encoded, cfg := encodeOne(t, video.MotionLow)
	st, err := AnalyzeClip(encoded, cfg, testMTU)
	if err != nil {
		t.Fatal(err)
	}
	if st.IFrames != 2 || st.PFrames != 10 {
		t.Fatalf("frame counts %d/%d", st.IFrames, st.PFrames)
	}
	if st.MeanISize <= st.MeanPSize {
		t.Fatalf("mean I %v <= mean P %v", st.MeanISize, st.MeanPSize)
	}
	if st.IFraction <= 0 || st.IFraction >= 1 {
		t.Fatalf("pI = %v", st.IFraction)
	}
	if st.MeanPacketsPerIFrame() < 2 || st.MeanPacketsPerPFrame() != 1 {
		t.Fatalf("packets/frame: I %v P %v", st.MeanPacketsPerIFrame(), st.MeanPacketsPerPFrame())
	}
	if st.TotalBytes <= 0 {
		t.Fatal("no bytes counted")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	_, encoded, cfg := encodeOne(t, video.MotionMedium)
	var buf syncWriter
	if err := WriteContainer(&buf, cfg, encoded); err != nil {
		t.Fatal(err)
	}
	gotCfg, gotFrames, err := ReadContainer(&byteReader{data: buf.data})
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg != cfg {
		t.Fatalf("config round trip: %+v vs %+v", gotCfg, cfg)
	}
	if len(gotFrames) != len(encoded) {
		t.Fatalf("frame count %d vs %d", len(gotFrames), len(encoded))
	}
	for i := range encoded {
		if gotFrames[i].Type != encoded[i].Type || gotFrames[i].Size() != encoded[i].Size() {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	// Decoded output must be identical.
	a, _ := DecodeSequence(encoded, cfg)
	b, _ := DecodeSequence(gotFrames, cfg)
	for i := range a {
		if video.MSE(a[i], b[i]) != 0 {
			t.Fatalf("frame %d decodes differently after container round trip", i)
		}
	}
}

func TestContainerRejectsGarbage(t *testing.T) {
	if _, _, err := ReadContainer(&byteReader{data: []byte("NOPE nope")}); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, _, err := ReadContainer(&byteReader{}); err == nil {
		t.Fatal("empty input should fail")
	}
}

type syncWriter struct{ data []byte }

func (w *syncWriter) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, errEOFc
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

var errEOFc = errC("EOF")

type errC string

func (e errC) Error() string { return string(e) }
