package audio

import (
	"math"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	tr := Generate(8000, 1.5, 1)
	if tr.SampleRate != 8000 || len(tr.Samples) != 12000 {
		t.Fatalf("track shape %d @%d", len(tr.Samples), tr.SampleRate)
	}
	if math.Abs(tr.Duration()-1.5) > 1e-9 {
		t.Fatalf("duration %v", tr.Duration())
	}
	// Deterministic.
	tr2 := Generate(8000, 1.5, 1)
	for i := range tr.Samples {
		if tr.Samples[i] != tr2.Samples[i] {
			t.Fatal("same seed diverged")
		}
	}
	// Non-silent.
	var peak int16
	for _, s := range tr.Samples {
		if s > peak {
			peak = s
		}
	}
	if peak < 10000 {
		t.Fatalf("peak %d too quiet", peak)
	}
}

func TestEncodeDecodeRoundTripSNR(t *testing.T) {
	tr := Generate(8000, 2, 7)
	frames, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 2 s at 20 ms per frame = 100 frames.
	if len(frames) != 100 {
		t.Fatalf("frames %d", len(frames))
	}
	rec, err := Decode(frames, tr.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	snr, err := SNR(tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	if snr < 18 {
		t.Fatalf("ADPCM SNR %.1f dB too low", snr)
	}
}

func TestCompressionRatio(t *testing.T) {
	tr := Generate(8000, 2, 3)
	frames, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	rate := Bitrate(frames, tr.Duration())
	// 4-bit ADPCM of 16-bit 8 kHz PCM: ~32 kb/s plus small headers.
	if rate < 30e3 || rate > 40e3 {
		t.Fatalf("bitrate %.0f b/s out of ADPCM range", rate)
	}
}

func TestLostFrameConcealsToSilence(t *testing.T) {
	tr := Generate(8000, 1, 5)
	frames, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := Decode(frames, tr.SampleRate)
	frames[10].Data = nil // lost packet
	rec, err := Decode(frames, tr.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	per := int(8000 * FrameDuration)
	for i := 10 * per; i < 11*per; i++ {
		if rec.Samples[i] != 0 {
			t.Fatal("lost frame should conceal to silence")
		}
	}
	// Neighbouring frames are bit-identical (frames are independent).
	for i := 11 * per; i < 12*per; i++ {
		if rec.Samples[i] != clean.Samples[i] {
			t.Fatal("loss propagated into the next frame")
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]Frame{{Seq: 0, Samples: 10, Data: []byte{1}}}, 8000); err == nil {
		t.Fatal("truncated frame should fail")
	}
	if _, err := Decode(nil, 0); err == nil {
		t.Fatal("bad sample rate should fail")
	}
	if _, err := Decode([]Frame{{Samples: 2, Data: []byte{0, 0, 99, 0}}}, 8000); err == nil {
		t.Fatal("bad index should fail")
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(&Track{SampleRate: 8000}); err == nil {
		t.Fatal("empty track should fail")
	}
	if _, err := Encode(&Track{SampleRate: 10, Samples: make([]int16, 100)}); err == nil {
		t.Fatal("tiny sample rate should fail")
	}
}

func TestSNRErrors(t *testing.T) {
	a := Generate(8000, 1, 1)
	b := Generate(16000, 1, 1)
	if _, err := SNR(a, b); err == nil {
		t.Fatal("shape mismatch should fail")
	}
	if snr, err := SNR(a, a); err != nil || !math.IsInf(snr, 1) {
		t.Fatal("identical tracks should have infinite SNR")
	}
}

// The paper's expectation: audio is cheap enough to always encrypt. Check
// the byte volumes: 2 s of ADPCM audio is a small fraction of even a
// slow-motion video stream of the same duration.
func TestAudioVolumeSmallVersusVideo(t *testing.T) {
	tr := Generate(8000, 2, 9)
	frames, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	audioBytes := 0
	for _, f := range frames {
		audioBytes += len(f.Data)
	}
	// A slow CIF video stream runs ~30-50 kB/s in this codec; audio is
	// ~4 kB/s. Assert the order-of-magnitude gap that justifies
	// always-encrypting audio.
	if audioBytes > 10*1024 {
		t.Fatalf("2s of audio is %d bytes; expected ~8 kB", audioBytes)
	}
}
