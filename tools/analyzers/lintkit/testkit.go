package lintkit

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunTest applies the analyzer to the single package formed by the .go
// files in dir, pretending the package lives at importPath (so the
// analyzer's Packages filter is exercised exactly as in production),
// and checks the findings against `// want "regexp"` comments in the
// analysistest convention: every want must be matched by a diagnostic
// on its line, and every diagnostic must be matched by a want.
func RunTest(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	diags, err := runOnDir(a, dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(diags))
	for _, w := range wants {
		ok := false
		for i, d := range diags {
			if matched[i] || filepath.Base(d.Pos.Filename) != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// RunTestNone asserts the analyzer reports nothing for dir when the
// package is placed at importPath — used to prove package filters and
// allowlist markers suppress as designed.
func RunTestNone(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	diags, err := runOnDir(a, dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic for %s: %s", importPath, d)
	}
}

func runOnDir(a *Analyzer, dir, importPath string) ([]Diagnostic, error) {
	pkg, err := checkDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
}

// checkDir parses and type-checks the files of dir as one package,
// resolving imports from the standard library only (testdata imports
// nothing else).
func checkDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(token.NewFileSet(), "source", nil)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		allow:      buildAllowIndex(fset, files),
	}, nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func parseWants(dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				pat := arg[1]
				if pat == "" && arg[2] != "" {
					unq, err := strconv.Unquote(`"` + arg[2] + `"`)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string: %v", e.Name(), i+1, err)
					}
					pat = unq
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", e.Name(), i+1, err)
				}
				wants = append(wants, want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}
