package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
	"repro/internal/video"
)

// regressPayloads packetizes the session's frames and returns the first
// n payloads — valid codec packets the reassembler accepts.
func regressPayloads(t *testing.T, s Session, n int) [][]byte {
	t.Helper()
	var out [][]byte
	for _, ef := range s.Encoded {
		pkts, err := codec.Packetize(ef, s.MTU)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			out = append(out, p.Payload)
		}
		if len(out) >= n {
			return out[:n]
		}
	}
	t.Fatalf("clip yields only %d packets, need %d", len(out), n)
	return nil
}

// sendRaw marshals one RTP packet and writes it on conn.
func sendRaw(t *testing.T, conn net.Conn, buf []byte, seq64 uint64, encrypted bool, payload []byte) {
	t.Helper()
	p := rtp.Packet{
		PayloadType: rtp.PayloadTypeVideo,
		Marker:      encrypted,
		Sequence:    uint16(seq64),
		Timestamp:   uint32(seq64),
		SSRC:        0x7561,
		Payload:     payload,
	}
	if _, err := conn.Write(p.MarshalInto(buf)); err != nil {
		t.Fatal(err)
	}
}

// A packet reordered across the 16-bit wrap must decrypt under its
// ORIGINAL epoch. The old extension logic pinned every arrival at or
// above the running maximum, so a straggler from just before the wrap
// was pushed a whole epoch forward: wrong IV, garbled payload, and
// maxSeq leaping by ~65536 (which then detonated the NACK scan).
func TestLiveReceiverReorderedWrapDecrypts(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeAll, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	cipher, err := vcrypt.NewCipher(pol.Alg, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	// Arrival order: two packets before the wrap, two after it, then a
	// straggler from before the wrap arriving late. Each is encrypted
	// under the extended sequence the sender would have used.
	seqs := []uint64{65534, 65535, 65536, 65537, 65533}
	payloads := regressPayloads(t, s, len(seqs))
	conn, err := net.Dial("udp", rx.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	for i, seq64 := range seqs {
		payload := append([]byte(nil), payloads[i]...)
		cipher.EncryptPacket(seq64, payload)
		sendRaw(t, conn, buf, seq64, true, payload)
		time.Sleep(2 * time.Millisecond) // preserve the crafted arrival order
	}
	if err := rx.WaitForPackets(len(seqs), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	captured, usable := rx.Stats()
	if captured != len(seqs) {
		t.Fatalf("captured %d of %d", captured, len(seqs))
	}
	// The straggler only reassembles if it decrypted under 65533, not
	// under 65533+65536.
	if usable != len(seqs) {
		t.Fatalf("usable %d of %d: straggler decrypted in the wrong epoch", usable, len(seqs))
	}
	rx.mu.Lock()
	maxSeq := rx.maxSeq
	rx.mu.Unlock()
	if maxSeq != 65538 {
		t.Fatalf("maxSeq %d, want 65538: reordered straggler extended the epoch", maxSeq)
	}
	if d := rx.Duplicates(); d != 0 {
		t.Fatalf("%d arrivals misclassified as duplicates", d)
	}
}

// A spurious sequence jump (sender restart, corrupted header) used to
// turn every NACK tick into a rescan of [0, maxSeq) that requested tens
// of thousands of never-sent sequences. The scan must instead abandon
// everything more than maxNackWindow behind the head.
func TestNACKStormBoundedAfterSeqJump(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rx.EnableNACK(10 * time.Millisecond)
	raddr, err := net.ResolveUDPAddr("udp", rx.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A listening socket plays the sender, so the receiver's NACKs come
	// back to it.
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payloads := regressPayloads(t, s, 4)
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	for i, seq := range []uint64{0, 1, 2} {
		sendRaw(t, conn, buf, seq, false, payloads[i])
	}
	if err := rx.WaitForPackets(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The jump: wire sequence 40000 lands as extended 40000 and drags
	// maxSeq with it, leaving a 37997-sequence hole behind.
	sendRaw(t, conn, buf, 40000, false, payloads[3])
	if err := rx.WaitForPackets(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	nacked := make(map[uint64]bool)
	deadline := time.Now().Add(300 * time.Millisecond)
	rbuf := make([]byte, 65536)
	for time.Now().Before(deadline) {
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck // UDP deadline set cannot fail
		n, rerr := conn.Read(rbuf)
		if rerr != nil {
			continue
		}
		seqs, ok := parseNACK(rbuf[:n])
		if !ok {
			continue
		}
		if len(seqs) > maxNackBatch {
			t.Fatalf("NACK datagram carries %d sequences, cap is %d", len(seqs), maxNackBatch)
		}
		for _, q := range seqs {
			nacked[q] = true
		}
	}
	if len(nacked) == 0 {
		t.Fatal("no NACKs observed; the loop is not running")
	}
	lo := uint64(40001 - maxNackWindow)
	for q := range nacked {
		if q < lo {
			t.Fatalf("NACK for abandoned sequence %d (window floor %d): the jump triggered a full rescan", q, lo)
		}
	}
	if len(nacked) > maxNackWindow {
		t.Fatalf("%d distinct sequences NACKed, window is %d", len(nacked), maxNackWindow)
	}
}

// Over a long session the receiver's bookkeeping must stay bounded: the
// dedup window compacts delivered sequences into its floor, and NACK
// retry state is pruned on receipt and abandoned below the scan window.
// The old code kept one map entry per delivered sequence and one per
// recovered loss, forever.
func TestLiveReceiverLongSessionMemoryBounded(t *testing.T) {
	pol := vcrypt.Policy{Mode: vcrypt.ModeNone, Alg: vcrypt.AES256}
	s, _ := testSession(t, video.MotionLow, pol)
	rx, err := NewLiveReceiver(s.Config, pol.Alg, s.Key, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	rx.EnableNACK(5 * time.Millisecond)
	conn, err := net.Dial("udp", rx.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A tiny opaque payload: the bookkeeping under test (dedup window,
	// NACK maps) is upstream of the reassembler, and small packets keep
	// the 50k-packet blast fast even under -race.
	payload := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	buf := make([]byte, rtp.HeaderSize+s.MTU+64)
	// Phase 1: 10k packets with ~1% holes the sender never fills.
	for seq := uint64(0); seq < 10000; seq++ {
		if seq%97 == 13 {
			continue
		}
		sendRaw(t, conn, buf, seq, false, payload)
		if seq%500 == 499 {
			time.Sleep(time.Millisecond) // let the receiver drain
		}
	}
	// Phase 2: a spurious forward jump, then a long in-order tail that
	// pushes the head past the dedup span so floor compaction engages.
	for seq := uint64(40000); seq <= 80000; seq++ {
		sendRaw(t, conn, buf, seq, false, payload)
		if seq%1000 == 999 {
			time.Sleep(time.Millisecond)
		}
	}
	// Wait for the receiver to go quiet (UDP on loopback may still drop
	// under this blast; the bounds must hold regardless of what landed).
	prev := -1
	for i := 0; i < 200; i++ {
		c, _ := rx.Stats()
		if c == prev && c > 0 {
			break
		}
		prev = c
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // one more NACK tick past quiescence

	rx.mu.Lock()
	pending := rx.window.Pending()
	floor := rx.window.Floor()
	nackTry := len(rx.nackTry)
	nackAt := len(rx.nackAt)
	maxSeq := rx.maxSeq
	nackFloor := rx.nackFloor
	rx.mu.Unlock()
	if maxSeq < 75000 {
		t.Fatalf("too little traffic survived to exercise the bounds (maxSeq %d)", maxSeq)
	}
	if pending > defaultSeqSpan {
		t.Fatalf("dedup window holds %d sparse entries, span is %d", pending, defaultSeqSpan)
	}
	if floor < maxSeq-defaultSeqSpan {
		t.Fatalf("window floor %d lags maxSeq %d by more than the span", floor, maxSeq)
	}
	bound := maxNackWindow + maxNackBatch
	if nackTry > bound {
		t.Fatalf("nackTry holds %d entries, bound is %d", nackTry, bound)
	}
	if nackAt > bound {
		t.Fatalf("nackAt holds %d entries, bound is %d", nackAt, bound)
	}
	if nackFloor < maxSeq-maxNackWindow {
		t.Fatalf("nackFloor %d lags maxSeq %d beyond the scan window", nackFloor, maxSeq)
	}
}
