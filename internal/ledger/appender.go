package ledger

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes an Appender. The batch size / max wait pair is the
// throughput-vs-latency knob from the baseline-vs-batching grid: larger
// batches amortise the Merkle tree and the write syscall over more
// entries (the benchmark shows millions of entries/sec at 256+), while
// MaxWait bounds how stale the on-disk chain can be under a trickle.
type Config struct {
	// BatchSize seals a batch once this many entries are buffered.
	// Default 256.
	BatchSize int
	// MaxWait seals a non-empty partial batch after this long even if
	// BatchSize was never reached. Default 50ms.
	MaxWait time.Duration
	// Buffer is the channel capacity between the hot paths and the
	// sealer. When full, Append drops (and counts). Default 4×BatchSize.
	Buffer int
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 50 * time.Millisecond
	}
	if c.Buffer <= 0 {
		c.Buffer = 4 * c.BatchSize
	}
	return c
}

// Appender feeds a hash-chained ledger from concurrent hot paths. All
// methods are safe for concurrent use. The channel between producers
// and the sealer is never closed (producers race with Close); shutdown
// is an atomic closed flag plus a stop signal, and the sealer drains
// whatever made it into the channel before sealing the final batch.
type Appender struct {
	cfg Config
	w   io.Writer

	ch     chan Entry
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	appended atomic.Uint64
	dropped  atomic.Uint64

	mu      sync.Mutex // guards err and final Close
	err     error
	stopped bool

	// sealer-only state, no locking needed
	nextSeq   uint64
	nextBatch uint64
	prevHash  [32]byte
	pending   []Entry
	leaves    [][32]byte
	scratch   []byte
	line      []byte
	batches   atomic.Uint64
	bytes     atomic.Uint64
}

// NewAppender starts the background sealer writing batches to w. The
// writer is used only from the sealer goroutine; callers own closing
// the underlying file after Close returns.
func NewAppender(w io.Writer, cfg Config) *Appender {
	cfg = cfg.withDefaults()
	a := &Appender{
		cfg:    cfg,
		w:      w,
		ch:     make(chan Entry, cfg.Buffer),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		leaves: make([][32]byte, 0, cfg.BatchSize),
	}
	a.pending = make([]Entry, 0, cfg.BatchSize)
	go a.sealLoop()
	return a
}

// Append enqueues the entry without blocking. It reports false — and
// bumps the drop counter — when the appender is closed or the sealer is
// behind and the buffer is full. Seq is assigned by the sealer; Time
// should already be stamped by the caller (Emit does this).
func (a *Appender) Append(e Entry) bool {
	if a.closed.Load() {
		a.dropped.Add(1)
		mDropped.Inc()
		return false
	}
	select {
	case a.ch <- e:
		a.appended.Add(1)
		mAppended.Inc()
		return true
	default:
		a.dropped.Add(1)
		mDropped.Inc()
		return false
	}
}

// AppendBlocking enqueues the entry, waiting for buffer space instead of
// dropping. For callers that must not lose entries (the benchmark, the
// loadgen audit run); hot packet paths use Append. Returns false only if
// the appender is closed.
func (a *Appender) AppendBlocking(e Entry) bool {
	if a.closed.Load() {
		a.dropped.Add(1)
		mDropped.Inc()
		return false
	}
	select {
	case a.ch <- e:
		a.appended.Add(1)
		mAppended.Inc()
		return true
	case <-a.stop:
		a.dropped.Add(1)
		mDropped.Inc()
		return false
	}
}

// Appended reports entries accepted into the buffer so far.
func (a *Appender) Appended() uint64 { return a.appended.Load() }

// Dropped reports entries lost to a full buffer or a closed appender.
func (a *Appender) Dropped() uint64 { return a.dropped.Load() }

// Batches reports batches sealed so far.
func (a *Appender) Batches() uint64 { return a.batches.Load() }

// Err returns the first write/encode error the sealer hit, if any.
func (a *Appender) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Close stops accepting entries, drains what was already buffered,
// seals the final partial batch and waits for the sealer to exit. It
// returns the first error the sealer encountered.
func (a *Appender) Close() error {
	a.closed.Store(true)
	a.mu.Lock()
	if !a.stopped {
		a.stopped = true
		close(a.stop)
	}
	a.mu.Unlock()
	<-a.done
	return a.Err()
}

func (a *Appender) sealLoop() {
	defer close(a.done)
	timer := time.NewTimer(a.cfg.MaxWait)
	defer timer.Stop()
	for {
		select {
		case e := <-a.ch:
			a.buffer(e)
			// Greedily drain whatever else is already queued: the
			// two-case non-blocking select is markedly cheaper than
			// re-entering the three-way select once per entry.
		fill:
			for len(a.pending) < a.cfg.BatchSize {
				select {
				case e := <-a.ch:
					a.buffer(e)
				default:
					break fill
				}
			}
			if len(a.pending) >= a.cfg.BatchSize {
				a.seal()
				resetTimer(timer, a.cfg.MaxWait)
			}
		case <-timer.C:
			if len(a.pending) > 0 {
				a.seal()
			}
			timer.Reset(a.cfg.MaxWait)
		case <-a.stop:
			// Drain whatever producers got in before the closed flag
			// landed, then seal the remainder and exit.
			for {
				select {
				case e := <-a.ch:
					a.buffer(e)
					if len(a.pending) >= a.cfg.BatchSize {
						a.seal()
					}
				default:
					if len(a.pending) > 0 {
						a.seal()
					}
					return
				}
			}
		}
	}
}

func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

func (a *Appender) buffer(e Entry) {
	e.Seq = a.nextSeq
	a.nextSeq++
	a.pending = append(a.pending, e)
}

// seal hashes the pending entries into a Merkle root, chains the batch
// header onto prevHash and writes the JSON line. Called only from the
// sealer goroutine.
func (a *Appender) seal() {
	a.leaves = a.leaves[:0]
	for i := range a.pending {
		var h [32]byte
		h, a.scratch = leafHash(&a.pending[i], a.scratch)
		a.leaves = append(a.leaves, h)
	}
	b := Batch{
		Index:    a.nextBatch,
		PrevHash: a.prevHash,
		Root:     merkleRoot(a.leaves),
		Count:    uint32(len(a.pending)),
		FirstSeq: a.pending[0].Seq,
		SealedAt: time.Now().UnixNano(),
		Entries:  a.pending,
	}
	a.line = b.appendLine(a.line[:0])
	line := a.line
	_, err := a.w.Write(line)
	if err != nil {
		a.mu.Lock()
		if a.err == nil {
			a.err = err
		}
		a.mu.Unlock()
	} else {
		a.prevHash = b.headerHash()
		a.nextBatch++
		a.batches.Add(1)
		mBatches.Inc()
		a.bytes.Add(uint64(len(line)))
		mBytes.Add(float64(len(line)))
	}
	a.pending = a.pending[:0]
}

// global is the process-wide appender the Emit hook feeds. Nil (the
// default) means auditing is off and Emit is a single atomic load.
var global atomic.Pointer[Appender]

// Install sets (or, with nil, clears) the process-wide appender that
// Emit feeds. It returns the previous appender so callers can close it.
func Install(a *Appender) *Appender {
	if a == nil {
		return global.Swap(nil)
	}
	return global.Swap(a)
}

// Enabled reports whether a process-wide appender is installed.
func Enabled() bool { return global.Load() != nil }

// Emit appends one event to the installed process-wide appender, if
// any. It never blocks: with no appender installed it is one atomic
// load, and with one installed it is a non-blocking channel send. Hot
// paths call this directly.
func Emit(t EventType, actor string, aField, bField uint64, note string) {
	ap := global.Load()
	if ap == nil {
		return
	}
	ap.Append(Entry{
		Time:  time.Now().UnixNano(),
		Type:  t,
		Actor: actor,
		A:     aField,
		B:     bField,
		Note:  note,
	})
}
