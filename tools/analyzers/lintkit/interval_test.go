package lintkit

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// analyzeSnippet type-checks one file and solves the interval analysis
// of the function named fn, returning the analysis plus a lookup from
// variable name to object (first declaration wins).
func analyzeSnippet(t *testing.T, src, fn string) (*IntervalAnalysis, map[string]types.Object) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("snippet", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	var decl *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			decl = fd
		}
	}
	if decl == nil {
		t.Fatalf("function %s not found", fn)
	}
	objs := make(map[string]types.Object)
	for id, obj := range info.Defs {
		if obj == nil {
			continue
		}
		if _, seen := objs[id.Name]; !seen {
			objs[id.Name] = obj
		}
	}
	return AnalyzeFunc(info, nil, nil, nil, decl), objs
}

// factAt returns the fact holding immediately before the first
// statement whose rendering contains marker — in practice, before the
// expression statement `sink(x)`.
func factAtSink(t *testing.T, ia *IntervalAnalysis) (IntervalFact, ast.Expr) {
	t.Helper()
	var got IntervalFact
	var arg ast.Expr
	ia.Walk(func(b *Block, n ast.Node, f IntervalFact) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" && got == nil {
			got = f.clone()
			arg = call.Args[0]
		}
	}, nil)
	if got == nil {
		t.Fatal("no sink(...) call found")
	}
	return got, arg
}

const snippetPrelude = `package snippet

func sink(v int)      {}
func sinkU(v uint64)  {}
`

func TestGuardRefinementNarrowsBothArms(t *testing.T) {
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(n int, buf []byte) {
	if n > len(buf) {
		return
	}
	if n < 0 {
		return
	}
	sink(n)
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Lo != 0 {
		t.Errorf("n.Lo = %d, want 0", v.Lo)
	}
	sym := oneSymIn(t, v.SymHi)
	if off := v.SymHi[sym]; off != 0 {
		t.Errorf("n <= len(buf)+%d, want +0", off)
	}
	if sym.Root.Name() != "buf" {
		t.Errorf("bound is on %s, want buf", sym.Root.Name())
	}
}

func oneSymIn(t *testing.T, m map[LenSym]int64) LenSym {
	t.Helper()
	if len(m) != 1 {
		t.Fatalf("got %d symbolic bounds, want 1: %v", len(m), m)
	}
	for sym := range m {
		return sym
	}
	panic("unreachable")
}

func TestStrictComparisonShiftsBound(t *testing.T) {
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(i int, buf []byte) {
	if i >= 0 && i < len(buf) {
		sink(i)
	}
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Lo != 0 {
		t.Errorf("i.Lo = %d, want 0", v.Lo)
	}
	sym := oneSymIn(t, v.SymHi)
	if off := v.SymHi[sym]; off != -1 {
		t.Errorf("i <= len(buf)+%d, want -1 from the strict <", off)
	}
}

func TestWideningTerminatesAndKeepsZeroFloor(t *testing.T) {
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(n int) {
	i := 0
	for i < n {
		i++
	}
	sink(i)
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Lo != 0 {
		t.Errorf("after the loop i.Lo = %d, want 0 (widening floor)", v.Lo)
	}
}

func TestLoopBodyKeepsGuardBound(t *testing.T) {
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(buf []byte) {
	for i := 0; i < len(buf); i++ {
		sink(i)
	}
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Lo != 0 {
		t.Errorf("i.Lo = %d, want 0", v.Lo)
	}
	sym := oneSymIn(t, v.SymHi)
	if off := v.SymHi[sym]; off != -1 {
		t.Errorf("in the body i <= len(buf)+%d, want -1", off)
	}
}

func TestRangeKeyBoundedBySliceLen(t *testing.T) {
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(xs []int) {
	for i := range xs {
		sink(i)
	}
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Lo != 0 {
		t.Errorf("range key Lo = %d, want 0", v.Lo)
	}
	sym := oneSymIn(t, v.SymHi)
	if off := v.SymHi[sym]; off != -1 {
		t.Errorf("range key <= len(xs)+%d, want -1", off)
	}
}

func TestConversionTruncationDropsBounds(t *testing.T) {
	// uint16 -> int is value-preserving; int -> uint16 of an unbounded
	// value is a truncation and must fall back to the full type range.
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(n int, w uint16) {
	a := int(w)
	_ = a
	b := uint16(n)
	_ = b
	sink(int(b))
}
`, "f")
	f, _ := factAtSink(t, ia)
	var aObj, bObj types.Object
	for obj := range f {
		switch obj.Name() {
		case "a":
			aObj = obj
		case "b":
			bObj = obj
		}
	}
	if aObj == nil || bObj == nil {
		t.Fatal("locals a/b not tracked")
	}
	av := f[aObj]
	if av.Lo != 0 || av.Hi != 65535 {
		t.Errorf("a = [%d, %d], want [0, 65535] (widening conversion preserves the range)", av.Lo, av.Hi)
	}
	bv := f[bObj]
	if bv.Lo != 0 || bv.Hi != 65535 {
		t.Errorf("b = [%d, %d], want the full uint16 range after truncation", bv.Lo, bv.Hi)
	}
}

func TestAssignmentToSliceKillsSymbolicBounds(t *testing.T) {
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(n int, buf []byte) {
	if n < 0 || n > len(buf) {
		return
	}
	buf = buf[1:]
	sink(n)
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if len(v.SymHi) != 0 {
		t.Errorf("reassigning buf must kill len(buf) bounds, still have %v", v.SymHi)
	}
}

func TestArithmeticShiftsSymbolicBound(t *testing.T) {
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(n int, buf []byte) {
	if n < 0 || n >= len(buf) {
		return
	}
	m := n + 1
	sink(m)
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	sym := oneSymIn(t, v.SymHi)
	if off := v.SymHi[sym]; off != 0 {
		t.Errorf("n+1 <= len(buf)+%d, want +0 (n <= len-1 shifted by 1)", off)
	}
}

func TestInfeasibleBranchPruned(t *testing.T) {
	// After `if n != 3 { return }`, n == 3 exactly.
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(n int) {
	if n != 3 {
		return
	}
	sink(n)
}
`, "f")
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Lo != 3 || v.Hi != 3 {
		t.Errorf("n = [%d, %d], want [3, 3]", v.Lo, v.Hi)
	}
}

func TestUnsignedGuardViaConversionPeeling(t *testing.T) {
	// The parser idiom: `if uint64(len(rest)) < l { return }` proves
	// l <= len(rest) on the fallthrough arm even though the comparison
	// is in uint64.
	ia, _ := analyzeSnippet(t, snippetPrelude+`
func f(l uint64, rest []byte) {
	if uint64(len(rest)) < l {
		return
	}
	sink(int(l))
}
`, "f")
	f, _ := factAtSink(t, ia)
	var lObj types.Object
	for obj := range f {
		if obj.Name() == "l" {
			lObj = obj
		}
	}
	if lObj == nil {
		t.Fatal("l not tracked")
	}
	v := f[lObj]
	sym := oneSymIn(t, v.SymHi)
	if off := v.SymHi[sym]; off != 0 {
		t.Errorf("l <= len(rest)+%d, want +0", off)
	}
	if sym.Root.Name() != "rest" {
		t.Errorf("bound on %s, want rest", sym.Root.Name())
	}
}

func TestSummariesPropagateReturnRanges(t *testing.T) {
	fset := token.NewFileSet()
	src := snippetPrelude + `
func capped(raw uint32) int {
	if raw > 4096 {
		return 4096
	}
	return int(raw)
}

func caller(raw uint32) {
	n := capped(raw)
	sink(n)
}
`
	file, err := parser.ParseFile(fset, "sum.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("snippet", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{
		ImportPath: "snippet",
		Fset:       fset,
		Files:      []*ast.File{file},
		Types:      tpkg,
		Info:       info,
	}
	prog := NewProgram([]*Package{pkg})
	sums := BuildIntervalSummaries(prog, nil)
	var cappedFn *types.Func
	for fn := range sums {
		if fn.Name() == "capped" {
			cappedFn = fn
		}
	}
	if cappedFn == nil {
		t.Fatal("no summary for capped")
	}
	sum := sums[cappedFn]
	if len(sum) != 1 {
		t.Fatalf("capped summary has %d results, want 1", len(sum))
	}
	if sum[0].Lo != 0 || sum[0].Hi != 4096 {
		t.Errorf("capped() = [%d, %d], want [0, 4096]", sum[0].Lo, sum[0].Hi)
	}

	// and the caller sees it through AnalyzeFunc
	var callerDecl *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "caller" {
			callerDecl = fd
		}
	}
	ia := AnalyzeFunc(info, prog, sums, nil, callerDecl)
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Lo != 0 || v.Hi != 4096 {
		t.Errorf("caller sees n = [%d, %d], want [0, 4096]", v.Lo, v.Hi)
	}
}

func TestTaintSourcesMarkResultsUntrusted(t *testing.T) {
	fset := token.NewFileSet()
	src := `package snippet

func sink(v int) {}

func parse() uint32 { return 0 }

func f() {
	n := parse()
	sink(int(n))
	if n > 16 {
		return
	}
	sink(int(n))
}
`
	file, err := parser.ParseFile(fset, "taint.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("snippet", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	var decl *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			decl = fd
		}
	}
	src0 := func(fn *types.Func) bool { return fn.Name() == "parse" }
	ia := AnalyzeFunc(info, nil, nil, src0, decl)
	var vals []Value
	ia.Walk(func(b *Block, n ast.Node, f IntervalFact) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
			vals = append(vals, ia.Eval(f, call.Args[0]))
		}
	}, nil)
	if len(vals) != 2 {
		t.Fatalf("found %d sinks, want 2", len(vals))
	}
	if !vals[0].Untrusted {
		t.Error("first sink: parse() result must be untrusted")
	}
	if !vals[1].Untrusted {
		t.Error("second sink: bounding does not clear taint (only equality blessing does)")
	}
	if vals[1].Hi != 16 {
		t.Errorf("after the guard n.Hi = %d, want 16", vals[1].Hi)
	}
}

func TestEqualityBlessingClearsTaint(t *testing.T) {
	fset := token.NewFileSet()
	src := `package snippet

func sink(v int) {}

func parse() uint32 { return 0 }

func f(want int) {
	n := parse()
	if int(n) != want {
		return
	}
	sink(int(n))
}
`
	file, err := parser.ParseFile(fset, "bless.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("snippet", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	var decl *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			decl = fd
		}
	}
	src0 := func(fn *types.Func) bool { return fn.Name() == "parse" }
	ia := AnalyzeFunc(info, nil, nil, src0, decl)
	f, arg := factAtSink(t, ia)
	v := ia.Eval(f, arg)
	if v.Untrusted {
		t.Error("n == want (trusted) must clear the taint bit")
	}
}

func TestSatArithmetic(t *testing.T) {
	if got := satAdd(PosInf, -5); got != PosInf {
		t.Errorf("satAdd(+inf, -5) = %d", got)
	}
	if got := satAdd(NegInf, 5); got != NegInf {
		t.Errorf("satAdd(-inf, 5) = %d", got)
	}
	if got := satAdd(int64(1)<<62, int64(1)<<62); got != PosInf {
		t.Errorf("satAdd overflow = %d, want +inf", got)
	}
	if got := satMul(NegInf, -1); got != PosInf {
		t.Errorf("satMul(-inf, -1) = %d, want +inf", got)
	}
	if got := satNeg(NegInf); got != PosInf {
		t.Errorf("satNeg(-inf) = %d, want +inf", got)
	}
	if got := floorDiv(-7, 2); got != -4 {
		t.Errorf("floorDiv(-7,2) = %d, want -4", got)
	}
	if got := ceilDiv(-7, 2); got != -3 {
		t.Errorf("ceilDiv(-7,2) = %d, want -3", got)
	}
	if got := orCeil(5); got != 7 {
		t.Errorf("orCeil(5) = %d, want 7", got)
	}
}
