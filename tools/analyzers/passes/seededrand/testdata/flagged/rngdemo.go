// Testdata for the seededrand pass: global math/rand entry points and
// wall-clock seeds are flagged; explicit seeded generators are not.
package rngdemo

import (
	"math/rand"
	"time"
)

func globals() int {
	rand.Shuffle(3, func(i, j int) {}) // want `use of global math/rand\.Shuffle shares hidden runtime-seeded state`
	return rand.Intn(10)               // want `use of global math/rand\.Intn shares hidden runtime-seeded state`
}

func timeSeeded() *rand.Rand {
	// Both the New and the NewSource constructor see the tainted seed.
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `math/rand\.New seeded from the wall clock` `math/rand\.NewSource seeded from the wall clock`
}

func seeded(seed int64) float64 {
	// A configuration-derived seed and methods on the local generator
	// are exactly the sanctioned idiom.
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
