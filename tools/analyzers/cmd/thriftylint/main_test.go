package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/tools/analyzers/lintkit"
)

// writeModule lays a throwaway Go module out under a temp dir so the
// tests can prove the gate end to end: LoadDir really shells out to
// `go list`, really type-checks, and the suite really fails a module
// with a seeded violation.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const gateGoMod = "module gatecheck\n\ngo 1.22\n"

func TestSeededViolationFailsTheGate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": gateGoMod,
		"internal/analytic/model.go": `package analytic

import "time"

// Epoch leaks the wall clock into model code — the exact regression
// the walltime gate exists to catch.
func Epoch() int64 { return time.Now().UnixNano() }
`,
	})
	pkgs, err := lintkit.LoadDir(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "walltime" || !strings.Contains(d.Message, "wall-clock time.Now") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestCleanModulePassesTheGate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": gateGoMod,
		"internal/analytic/model.go": `package analytic

// Epoch derives its value from configuration, as model code must.
func Epoch(seed int64) int64 { return seed * 1e9 }
`,
	})
	pkgs, err := lintkit.LoadDir(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestRepositoryIsClean runs the full suite over the enclosing root
// module — the same invocation CI gates on. It keeps the tree honest
// between CI runs: a finding here means either fix the code or justify
// it with //lint:allow.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("root module not found at %s", root)
	}
	pkgs, err := lintkit.LoadDir(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lintkit.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
}
