package lintkit

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// taintTestSpec mirrors the plainleak configuration against a
// self-contained test package: source() creates taint, Box.Encrypt
// sanitizes its payload argument, emit() is the sink, shouldEncrypt()
// is the policy guard and Mode/ModeNone the policy constant.
func taintTestSpec() *TaintSpec {
	return &TaintSpec{
		Sources:           []FuncMatch{{Path: "repro/internal/xmod", Name: "source"}},
		Sanitizers:        []SanitizerSpec{{Match: FuncMatch{Path: "repro/internal/xmod", Recv: "Box", Name: "Encrypt"}, Arg: 2}},
		Sinks:             []SinkSpec{{Match: FuncMatch{Path: "repro/internal/xmod", Name: "emit"}, Args: []int{0}, What: "emit"}},
		PolicyGuards:      []FuncMatch{{Path: "repro/internal/xmod", Name: "shouldEncrypt"}},
		PolicyClearConsts: []ConstMatch{{Path: "repro/internal/xmod", Name: "ModeNone"}},
	}
}

const taintPrelude = `package xmod

type Mode int

const (
	ModeNone Mode = iota
	ModeAll
)

type Box struct{}

func (b *Box) Encrypt(seq uint64, payload []byte) {}

func source() []byte { return []byte{1, 2, 3} }

func emit(b []byte) {}

func shouldEncrypt() bool { return true }

func otherCond() bool { return false }
`

// runTaint type-checks prelude+body as one package and returns the
// diagnostics of a taint engine run plus the engine itself.
func runTaint(t *testing.T, body string) ([]Diagnostic, *TaintEngine, *Program) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(taintPrelude+body), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := checkDir(dir, "repro/internal/xmod")
	if err != nil {
		t.Fatal(err)
	}
	spec := taintTestSpec()
	var eng *TaintEngine
	var prog *Program
	a := &Analyzer{
		Name: "tainttest",
		Doc:  "test harness analyzer",
		Run: func(p *Pass) error {
			prog = p.Prog
			eng = NewTaintEngine(p.Prog, spec)
			eng.Check(p)
			return nil
		},
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return diags, eng, prog
}

func TestTaintThroughSliceAppend(t *testing.T) {
	diags, _, _ := runTaint(t, `
func flow() {
	p := source()
	var acc [][]byte
	acc = append(acc, p)
	emit(acc[0])
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "emit") {
		t.Fatalf("diags = %v, want one finding at the sink", diags)
	}
}

func TestSanitizerClearsTaint(t *testing.T) {
	diags, _, _ := runTaint(t, `
func flow() {
	var b Box
	p := source()
	b.Encrypt(0, p)
	emit(p)
}
`)
	if len(diags) != 0 {
		t.Fatalf("diags = %v, want none after sanitizer", diags)
	}
}

func TestSanitizerThroughSliceExpr(t *testing.T) {
	// Partial-span encryption: the sanitized argument is payload[:n],
	// whose root object is still payload.
	diags, _, _ := runTaint(t, `
func flow() {
	var b Box
	p := source()
	b.Encrypt(0, p[:2])
	emit(p)
}
`)
	if len(diags) != 0 {
		t.Fatalf("diags = %v, want none (slice-expr sanitize)", diags)
	}
}

func TestPolicyGuardBlessesFalseEdge(t *testing.T) {
	// The classic selective-encryption shape: on the guard's false edge
	// the policy sanctioned plaintext; on the true edge the payload is
	// encrypted. No leak on either path.
	diags, _, _ := runTaint(t, `
func flow() {
	var b Box
	p := source()
	if shouldEncrypt() {
		b.Encrypt(0, p)
	}
	emit(p)
}
`)
	if len(diags) != 0 {
		t.Fatalf("diags = %v, want none (guarded on both paths)", diags)
	}
}

func TestNonPolicyGuardDoesNotBless(t *testing.T) {
	diags, _, _ := runTaint(t, `
func flow() {
	var b Box
	p := source()
	if otherCond() {
		b.Encrypt(0, p)
	}
	emit(p)
}
`)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one finding (plain guard leaves the false arm tainted)", diags)
	}
}

func TestGuardWithoutEncryptStillFlags(t *testing.T) {
	// A guard whose true arm forgets to encrypt: the false edge is
	// blessed but the true edge still carries taint to the sink. The
	// union join at the merge keeps the leak visible — this is the
	// mutant shape lintmut seeds.
	diags, _, _ := runTaint(t, `
func flow() {
	p := source()
	for i := 0; i < 2; i++ {
		if shouldEncrypt() {
			_ = i // forgot to encrypt
		}
		emit(p)
	}
}
`)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one finding (true arm unencrypted)", diags)
	}
}

func TestModeNoneComparisonPolarity(t *testing.T) {
	diags, _, _ := runTaint(t, `
func flowEq(m Mode) {
	p := source()
	if m == ModeNone {
		emit(p) // blessed: the policy said plaintext
	}
}

func flowNeq(m Mode) {
	var b Box
	p := source()
	if m != ModeNone {
		b.Encrypt(0, p)
	}
	emit(p) // false edge of != is the ModeNone case: blessed
}

func flowWrongArm(m Mode) {
	p := source()
	if m != ModeNone {
		emit(p) // encrypting mode, but the payload was never encrypted
	}
}
`)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly the flowWrongArm finding", diags)
	}
	if !strings.Contains(diags[0].Pos.String(), "x.go") {
		t.Fatalf("unexpected position: %v", diags[0])
	}
}

func TestInterproceduralSinkSummary(t *testing.T) {
	// helper's parameter reaches the sink; the caller supplying tainted
	// data is the finding, reported at the call site.
	diags, eng, prog := runTaint(t, `
func helper(b []byte) {
	emit(b)
}

func caller() {
	p := source()
	helper(p)
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "helper") {
		t.Fatalf("diags = %v, want one finding at the helper call site", diags)
	}
	// The summary records parameter 0 reaching a sink.
	for _, fn := range prog.Funcs() {
		if fn.Name() == "helper" {
			s := eng.Summary(fn)
			if s == nil || s.SinkParams&ParamOrigin(0) == 0 {
				t.Fatalf("helper summary = %+v, want SinkParams bit 0", s)
			}
		}
	}
}

func TestInterproceduralResultSummary(t *testing.T) {
	diags, _, _ := runTaint(t, `
func wrap() []byte {
	return source()
}

func caller() {
	p := wrap()
	emit(p)
}
`)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one finding (taint through wrap result)", diags)
	}
}

func TestErrorResultsDoNotCarryTaint(t *testing.T) {
	// The multi-value assignment from a source-like call must not taint
	// the error result: errors cannot hold payload bytes, and an early
	// return of err is not a leak (the false-positive shape found on
	// the real resume path).
	diags, _, _ := runTaint(t, `
func sourceErr() ([]byte, error) {
	return source(), nil
}

func emitStr(s string) {}

func caller() error {
	p, err := sourceErr()
	if err != nil {
		return err
	}
	var b Box
	b.Encrypt(0, p)
	return nil
}
`)
	if len(diags) != 0 {
		t.Fatalf("diags = %v, want none", diags)
	}
}

func TestFuncLitGoroutineSeesCapturedTaint(t *testing.T) {
	diags, _, _ := runTaint(t, `
func flow() {
	p := source()
	go func() {
		emit(p)
	}()
}
`)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one finding inside the goroutine literal", diags)
	}
}

func TestSummariesAreCachedPerProgram(t *testing.T) {
	_, eng, prog := runTaint(t, `
func helper(b []byte) { emit(b) }
`)
	// Same spec pointer + same program must return the same engine (the
	// bottom-up summary computation runs once per RunAnalyzers call).
	spec := taintTestSpec()
	e1 := NewTaintEngine(prog, spec)
	e2 := NewTaintEngine(prog, spec)
	if e1 != e2 {
		t.Fatal("NewTaintEngine did not cache by (program, spec)")
	}
	if eng == nil {
		t.Fatal("engine not built during the analyzer run")
	}
}

func TestCanCarryFiltersScalars(t *testing.T) {
	_, eng, _ := runTaint(t, ``)
	cases := []struct {
		t    types.Type
		want bool
	}{
		{types.Typ[types.Bool], false},
		{types.Typ[types.Int], false},
		{types.Typ[types.String], true},
		{types.NewSlice(types.Typ[types.Uint8]), true},
		{types.NewSlice(types.Typ[types.Bool]), false},
		{types.Universe.Lookup("error").Type(), false},
	}
	for _, c := range cases {
		if got := eng.canCarry(c.t); got != c.want {
			t.Errorf("canCarry(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}
