package transport

import "encoding/binary"

// Every function here handles its attacker-controlled integers with a
// provable guard — the shapes the real parsers use — and must produce
// zero findings.

func indexGuarded(data, table []byte) byte {
	n := int(binary.BigEndian.Uint16(data))
	if n >= len(table) {
		return 0
	}
	return table[n] // n in [0, len(table)-1]: uint16 gives the floor, the guard the ceiling
}

func sliceGuarded(data []byte) []byte {
	l := binary.BigEndian.Uint32(data)
	rest := data[4:]
	if uint64(len(rest)) < uint64(l) {
		return nil
	}
	return rest[:l] // l <= len(rest) via the peeled conversion guard
}

func makeCapped(data []byte) []byte {
	n := binary.BigEndian.Uint32(data)
	if n > 1<<24 {
		return nil
	}
	return make([]byte, n) // inclusive cap: Hi is exactly 1<<24
}

func makeLenBounded(data []byte) []byte {
	l, n := binary.Uvarint(data)
	if n <= 0 || l > uint64(len(data)) {
		return nil
	}
	return make([]byte, l) // bounded by len(data)
}

func loopCapped(data []byte) int {
	count := binary.BigEndian.Uint64(data)
	if count > 1<<20 {
		return 0
	}
	total := 0
	for i := uint64(0); i < count; i++ {
		total++
	}
	return total
}

func typeRangeBoundsSmallInts(data []byte) []uint64 {
	// a uint16 count needs no guard to size a slice: 65535 entries is
	// within the allocation cap by type alone
	n := int(binary.BigEndian.Uint16(data[4:6]))
	if len(data) < 6+8*n {
		return nil
	}
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = binary.BigEndian.Uint64(data[6+8*i:])
	}
	return seqs
}

func equalityBlessing(data []byte, want int) [][]byte {
	nmb, _ := binary.Uvarint(data)
	if int(nmb) != want {
		return nil
	}
	// nmb == want, a trusted quantity: the taint is blessed away
	return make([][]byte, nmb)
}

func untaintedAreIgnored(table []byte, n int) byte {
	return table[n] // n is not attacker input; other passes own this
}
