package transport

import (
	"encoding/binary"
	"testing"
)

// FuzzParseNACK feeds arbitrary datagrams to the NACK decoder that
// shares the data socket. It must cleanly reject anything that is not a
// complete NACK, and everything it accepts must round-trip through
// marshalNACK.
func FuzzParseNACK(f *testing.F) {
	f.Add(marshalNACK([]uint64{1, 2, 3}))
	f.Add(marshalNACK(nil))
	f.Add(marshalNACK([]uint64{0xFFFFFFFFFFFFFFFF}))
	short := marshalNACK([]uint64{7, 8})
	f.Add(short[:len(short)-4]) // truncated seq list
	f.Add([]byte("TVNK"))       // magic without a count
	huge := make([]byte, 6)
	copy(huge, "TVNK")
	binary.BigEndian.PutUint16(huge[4:6], 0xFFFF) // count with no body
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, ok := parseNACK(data)
		if !ok {
			return
		}
		if len(seqs) > maxNackBatch {
			// marshalNACK truncates at the batch cap, so only the capped
			// prefix round-trips.
			seqs = seqs[:maxNackBatch]
		}
		out, ok2 := parseNACK(marshalNACK(seqs))
		if !ok2 || len(out) != len(seqs) {
			t.Fatalf("re-marshal of accepted NACK failed (ok=%v, %d != %d)", ok2, len(out), len(seqs))
		}
		for i := range out {
			if out[i] != seqs[i] {
				t.Fatalf("seq %d changed in round trip: %d != %d", i, out[i], seqs[i])
			}
		}
	})
}
