package codec

import (
	"repro/internal/obs"
)

// Observability wiring (PR3). Recording is gated inside obs — with
// metrics disabled every call below is a single atomic load — and the
// macroblock hot path is touched only at row granularity (one atomic
// add per row, batched over the row's macroblocks), so the wavefront
// and the PR1 speedups are unaffected. None of these calls influence
// the bitstream: encoder output is bit-identical with metrics on or
// off (covered by TestMetricsDoNotChangeBitstream).
var (
	mFramesEncodedI = obs.NewCounter(`codec_frames_encoded_total{type="I"}`,
		"Frames encoded, by frame type.")
	mFramesEncodedP = obs.NewCounter(`codec_frames_encoded_total{type="P"}`,
		"Frames encoded, by frame type.")
	mFramesEncodedB = obs.NewCounter(`codec_frames_encoded_total{type="B"}`,
		"Frames encoded, by frame type.")
	mFrameBytesI = obs.NewCounter(`codec_frame_bytes_total{type="I"}`,
		"Compressed bytes produced, by frame type.")
	mFrameBytesP = obs.NewCounter(`codec_frame_bytes_total{type="P"}`,
		"Compressed bytes produced, by frame type.")
	mFrameBytesB = obs.NewCounter(`codec_frame_bytes_total{type="B"}`,
		"Compressed bytes produced, by frame type.")
	mRowsEncoded = obs.NewCounter("codec_mb_rows_encoded_total",
		"Macroblock rows encoded (row-worker task count).")
	mMBsEncoded = obs.NewCounter("codec_macroblocks_encoded_total",
		"Macroblocks encoded.")
	mFramesDecoded = obs.NewCounter("codec_frames_decoded_total",
		"Frames decoded (including concealed ones).")
	mEncodeFrameSeconds = obs.NewHistogram("codec_encode_frame_seconds",
		"Wall time to encode one frame.", nil)
	mRowEncodeSeconds = obs.NewHistogram("codec_row_encode_seconds",
		"Busy time per encoded macroblock row; sum ÷ (frame seconds × workers) is worker utilisation.", nil)
	mRowWorkers = obs.NewGauge("codec_row_workers",
		"Row workers used by the most recent parallel encode.")
)

// countEncodedFrame feeds the per-frame counters; called only when
// metrics are enabled (the Size scan walks MBData).
func countEncodedFrame(out *EncodedFrame) {
	switch out.Type {
	case IFrame:
		mFramesEncodedI.Inc()
		mFrameBytesI.Add(int64(out.Size()))
	case PFrame:
		mFramesEncodedP.Inc()
		mFrameBytesP.Add(int64(out.Size()))
	default:
		mFramesEncodedB.Inc()
		mFrameBytesB.Add(int64(out.Size()))
	}
}
