// Package core is the user-facing planner of Fig. 1: given a clip (or a
// short measurement prefix of it), the device, and the network conditions,
// it calibrates the analytical framework of Section 4 and predicts, for
// every candidate encryption policy, the per-packet delay at the sender,
// the PSNR an eavesdropper could reconstruct, and the average power draw —
// then recommends the cheapest policy that still meets a confidentiality
// target. This is the "encryption policy with minimum penalties" box of
// the paper's applicability diagram.
package core

import (
	"fmt"
	"sort"

	"repro/internal/analytic"
	"repro/internal/codec"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/vcrypt"
	"repro/internal/video"
	"repro/internal/wifi"
)

// Network describes the open WiFi cell.
type Network struct {
	// Stations contending for the channel (including the sender).
	Stations int
	// Rate is the 802.11g data rate in use.
	Rate wifi.Rate
	// ReceiverError and EavesdropperError are residual per-packet error
	// probabilities at each party after a collision-free transmission.
	ReceiverError, EavesdropperError float64
}

// DefaultNetwork is a lightly loaded public hotspot: a couple of
// background stations and small residual error rates, matching the
// benign-channel regime of the paper's cafe-style testbed.
func DefaultNetwork() Network {
	return Network{Stations: 3, Rate: wifi.Rate54, ReceiverError: 0.01, EavesdropperError: 0.03}
}

// Calibration holds every model parameter extracted from the measurement
// prefix, the device profile, and the channel fixed point — the inputs the
// paper estimates "with a few sample measurements" (Section 6.1).
type Calibration struct {
	Device  energy.Profile
	Network Network
	FPS     float64
	MTU     int

	// Arrival process fitted to the producer's packet insertions.
	Arrival analytic.MMPP2
	// Clip packet/byte structure.
	Clip codec.ClipStats
	// Channel operating point.
	DCF         wifi.DCFResult
	BackoffRate float64
	// Per-class transmission time stats (Eq. 16).
	TxMeanI, TxSigmaI, TxMeanP, TxSigmaP float64

	// Distortion side.
	Motion         video.MotionLevel
	DMin, DMax     float64
	InterGOP       stats.Polynomial
	MaxDistance    int
	BaseMSE        float64
	NoReferenceMSE float64
	SI, SP         int // decoder sensitivities per class
	NumGOPs        int

	// UniformQEavesdropper switches the eavesdropper's decryption-rate
	// model to the literal form of Section 4.3, p_d^e = (1-q)p_s, which
	// spreads the encrypted fraction q as uniform loss over both frame
	// classes. The default (false) applies the policy per class — exactly
	// the packets the policy selects become erasures — which is what the
	// paper's experiments do (the sender encrypts a deterministic set, not
	// a random sample) and what reproduces the Fig. 4 shapes; the literal
	// class-blind form is kept for the ablation study
	// (BenchmarkAblationUniformQ).
	UniformQEavesdropper bool
}

// Prediction is the model's output for one policy.
type Prediction struct {
	Policy vcrypt.Policy

	// Delay at the sender (seconds).
	MeanWait    float64
	MeanSojourn float64
	Rho         float64

	// Confidentiality: what the eavesdropper reconstructs.
	EavesdropperPSNR float64
	EavesdropperMOS  int
	// Fidelity at the legitimate receiver.
	ReceiverPSNR float64

	// Energy.
	AveragePowerW float64

	// Fraction of packets encrypted (q of Section 4.3).
	EncryptedFraction float64
}

// Calibrate builds a Calibration from an encoded clip. The distortion-side
// parameters (DMin/DMax, inter-GOP polynomial, sensitivities) must be
// supplied — measure them with MeasureDistortion, or reuse a stored
// profile for the motion class.
func Calibrate(
	encoded []*codec.EncodedFrame,
	cfg codec.Config,
	fps float64,
	mtu int,
	device energy.Profile,
	network Network,
	dist DistortionCalibration,
) (*Calibration, error) {
	if fps <= 0 {
		return nil, fmt.Errorf("core: fps %g", fps)
	}
	clipStats, err := codec.AnalyzeClip(encoded, cfg, mtu)
	if err != nil {
		return nil, err
	}
	if clipStats.IPackets == 0 || clipStats.PPackets == 0 {
		return nil, fmt.Errorf("core: clip needs both I and P packets")
	}
	dcf, err := wifi.SolveDCF(wifi.NewDefaultDCF(network.Stations))
	if err != nil {
		return nil, err
	}
	phy := wifi.PHY80211g()
	backoff := wifi.BackoffRate(wifi.NewDefaultDCF(network.Stations), dcf, phy.SlotTime)

	// Arrival fit: replay the producer schedule (frame instants plus the
	// disk-read gap within a frame burst) and fit the 2-MMPP, exactly the
	// calibration the paper performs on the initial event sequence. When
	// P-frames stay single packets the frame classes coincide with the
	// timing regimes and the class-labelled fit is exact; once P-frames
	// fragment into bursts (fast motion) the timing-based burst fit
	// captures the variance the queue actually sees.
	samples := producerSchedule(encoded, cfg, mtu, fps)
	var arr analytic.MMPP2
	if clipStats.MeanPacketsPerPFrame() <= 1.5 {
		arr, err = analytic.FitMMPP2(samples)
	} else {
		arr, err = analytic.FitMMPP2Bursts(samples, 1e-3)
		if err == analytic.ErrInsufficientData {
			// No fragmentation bursts at all (every frame fits one
			// packet); the class fit still describes the I/P cadence.
			arr, err = analytic.FitMMPP2(samples)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("core: arrival fit: %w", err)
	}

	txStats := func(sizes []int) (float64, float64, error) {
		times := make([]float64, len(sizes))
		for i, s := range sizes {
			t, err := phy.PacketTxTime(s, network.Rate)
			if err != nil {
				return 0, 0, err
			}
			times[i] = t
		}
		return stats.Mean(times), stats.StdDev(times), nil
	}
	tmi, tsi, err := txStats(clipStats.IPacketSizes)
	if err != nil {
		return nil, err
	}
	tmp, tsp, err := txStats(clipStats.PPacketSizes)
	if err != nil {
		return nil, err
	}

	cal := &Calibration{
		Device:  device,
		Network: network,
		FPS:     fps,
		MTU:     mtu,
		Arrival: arr,
		Clip:    clipStats,
		DCF:     dcf, BackoffRate: backoff,
		TxMeanI: tmi, TxSigmaI: tsi, TxMeanP: tmp, TxSigmaP: tsp,
		Motion:         dist.Motion,
		DMin:           dist.DMin,
		DMax:           dist.DMax,
		InterGOP:       dist.InterGOP,
		MaxDistance:    dist.MaxDistance,
		BaseMSE:        dist.BaseMSE,
		NoReferenceMSE: dist.NoReferenceMSE,
		SI:             dist.SI,
		SP:             dist.SP,
		NumGOPs:        (clipStats.Frames + cfg.GOPSize - 1) / cfg.GOPSize,
	}
	return cal, nil
}

// producerSchedule reconstructs the queue-insertion instants of the
// producer thread of Fig. 3.
func producerSchedule(encoded []*codec.EncodedFrame, cfg codec.Config, mtu int, fps float64) []analytic.ArrivalSample {
	var out []analytic.ArrivalSample
	for fi, ef := range encoded {
		pkts, err := codec.Packetize(ef, mtu)
		if err != nil {
			continue
		}
		t := float64(fi) / fps
		for pi, p := range pkts {
			out = append(out, analytic.ArrivalSample{
				Time:   t + float64(pi)*50e-6,
				IFrame: p.IsIFrame(),
			})
		}
	}
	return out
}

// ServiceParams assembles the Eq. (3) service model for one policy.
func (c *Calibration) ServiceParams(policy vcrypt.Policy) (analytic.ServiceParams, error) {
	encI, encP := policy.ClassProbabilities()
	emi, esi, err := c.Device.EncryptTimeStats(policy.Alg, encryptSpans(policy, c.Clip.IPacketSizes))
	if err != nil {
		return analytic.ServiceParams{}, err
	}
	emp, esp, err := c.Device.EncryptTimeStats(policy.Alg, encryptSpans(policy, c.Clip.PPacketSizes))
	if err != nil {
		return analytic.ServiceParams{}, err
	}
	return analytic.ServiceParams{
		PI:   c.Clip.IFraction,
		EncI: encI, EncP: encP,
		EncMeanI: emi, EncSigmaI: esi,
		EncMeanP: emp, EncSigmaP: esp,
		TxMeanI: c.TxMeanI, TxSigmaI: c.TxSigmaI,
		TxMeanP: c.TxMeanP, TxSigmaP: c.TxSigmaP,
		PS:      c.DCF.SuccessRate,
		LambdaB: c.BackoffRate,
	}, nil
}

// encryptSpans maps packet sizes to the byte spans the policy actually
// encrypts (identity unless the policy is header-only).
func encryptSpans(policy vcrypt.Policy, sizes []int) []int {
	if policy.HeaderOnlyBytes == 0 {
		return sizes
	}
	out := make([]int, len(sizes))
	for i, s := range sizes {
		out[i] = policy.EncryptSpan(s)
	}
	return out
}

// distortionModel builds the Section 4.3 model for a party.
func (c *Calibration) distortionModel(ps, encI, encP float64) analytic.DistortionModel {
	in := analytic.EavesdropperInputs{
		PS: ps, EncI: encI, EncP: encP,
		NI: int(c.Clip.MeanPacketsPerIFrame() + 0.5),
		NP: int(c.Clip.MeanPacketsPerPFrame() + 0.5),
		SI: c.SI, SP: c.SP,
	}
	if in.NI < 1 {
		in.NI = 1
	}
	if in.NP < 1 {
		in.NP = 1
	}
	pi, pp := in.FrameSuccessRates()
	return analytic.DistortionModel{
		G:         c.Clip.GOPSize,
		PISuccess: pi, PPSuccess: pp,
		DMin: c.DMin, DMax: c.DMax,
		InterGOP:       c.InterGOP,
		MaxDistance:    c.MaxDistance,
		BaseDistortion: c.BaseMSE,
		NoReferenceMSE: c.NoReferenceMSE,
	}
}

// Predict evaluates one policy through the full framework.
func (c *Calibration) Predict(policy vcrypt.Policy) (Prediction, error) {
	if err := policy.Validate(); err != nil {
		return Prediction{}, err
	}
	sp, err := c.ServiceParams(policy)
	if err != nil {
		return Prediction{}, err
	}
	q, err := analytic.SolveQueue(c.Arrival, sp)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: %s: %w", policy.Name(), err)
	}
	encI, encP := policy.ClassProbabilities()
	if c.UniformQEavesdropper {
		// Literal Section 4.3 model: the encrypted fraction q acts as
		// uniform additional packet loss on every class.
		q := sp.EncryptedFraction()
		encI, encP = q, q
	}
	// Delivery probabilities for the distortion side. MAC-layer retries
	// recover collisions (that cost shows up as backoff delay, Eq. 6-7),
	// so the packets a station actually loses are the residual per-station
	// errors, not the per-attempt collision probability.
	psRx := 1 - c.Network.ReceiverError
	psEv := 1 - c.Network.EavesdropperError
	evModel := c.distortionModel(psEv, encI, encP)
	evPSNR, err := evModel.ExpectedPSNR(c.NumGOPs)
	if err != nil {
		return Prediction{}, err
	}
	rxModel := c.distortionModel(psRx, 0, 0) // receiver decrypts everything
	rxPSNR, err := rxModel.ExpectedPSNR(c.NumGOPs)
	if err != nil {
		return Prediction{}, err
	}
	power, err := c.predictPower(policy, sp)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{
		Policy:            policy,
		MeanWait:          q.MeanWait,
		MeanSojourn:       q.MeanSojourn,
		Rho:               q.Rho,
		EavesdropperPSNR:  evPSNR,
		EavesdropperMOS:   mosFromPSNR(evPSNR),
		ReceiverPSNR:      rxPSNR,
		AveragePowerW:     power,
		EncryptedFraction: sp.EncryptedFraction(),
	}, nil
}

// predictPower estimates the stream's average power analytically: the
// expected crypto busy time plus radio airtime over the playout duration.
func (c *Calibration) predictPower(policy vcrypt.Policy, sp analytic.ServiceParams) (float64, error) {
	duration := float64(c.Clip.Frames) / c.FPS
	encI, encP := policy.ClassProbabilities()
	var crypto float64
	if encI > 0 {
		m, _, err := c.Device.EncryptTimeStats(policy.Alg, encryptSpans(policy, c.Clip.IPacketSizes))
		if err != nil {
			return 0, err
		}
		crypto += encI * m * float64(c.Clip.IPackets)
	}
	if encP > 0 {
		m, _, err := c.Device.EncryptTimeStats(policy.Alg, encryptSpans(policy, c.Clip.PPacketSizes))
		if err != nil {
			return 0, err
		}
		crypto += encP * m * float64(c.Clip.PPackets)
	}
	tx := sp.TxMeanI*float64(c.Clip.IPackets) + sp.TxMeanP*float64(c.Clip.PPackets)
	meter := energy.NewMeter(c.Device)
	meter.AddCrypto(crypto)
	meter.AddTx(tx)
	return meter.AveragePower(duration)
}

func mosFromPSNR(p float64) int {
	switch {
	case p > 37:
		return 5
	case p > 31:
		return 4
	case p > 25:
		return 3
	case p > 20:
		return 2
	default:
		return 1
	}
}

// Plan evaluates the candidate policies and returns the one with the
// smallest mean delay whose eavesdropper PSNR does not exceed
// maxEavesdropperPSNR (i.e. that keeps the stolen video at least that
// distorted), together with every prediction sorted by delay. If no
// candidate meets the target the strongest (lowest eavesdropper PSNR)
// candidate is returned with ErrNoPolicyMeetsTarget.
func Plan(cal *Calibration, candidates []vcrypt.Policy, maxEavesdropperPSNR float64) (Prediction, []Prediction, error) {
	if len(candidates) == 0 {
		return Prediction{}, nil, fmt.Errorf("core: no candidate policies")
	}
	preds := make([]Prediction, 0, len(candidates))
	for _, p := range candidates {
		pr, err := cal.Predict(p)
		if err != nil {
			return Prediction{}, nil, err
		}
		preds = append(preds, pr)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i].MeanSojourn < preds[j].MeanSojourn })
	for _, pr := range preds {
		if pr.EavesdropperPSNR <= maxEavesdropperPSNR {
			return pr, preds, nil
		}
	}
	best := preds[0]
	for _, pr := range preds[1:] {
		if pr.EavesdropperPSNR < best.EavesdropperPSNR {
			best = pr
		}
	}
	return best, preds, ErrNoPolicyMeetsTarget
}

// ErrNoPolicyMeetsTarget reports that no candidate achieved the requested
// confidentiality level.
var ErrNoPolicyMeetsTarget = fmt.Errorf("core: no candidate policy meets the confidentiality target")
