package codec

import (
	"testing"

	"repro/internal/video"
)

func bConfig(gop, b int) Config {
	return Config{Width: 96, Height: 96, GOPSize: gop, QI: 8, QP: 10, SearchRange: 16, BFrames: b}
}

func TestValidateB(t *testing.T) {
	if err := bConfig(12, 2).ValidateB(); err != nil {
		t.Fatal(err)
	}
	if err := bConfig(12, 1).ValidateB(); err != nil {
		t.Fatal(err)
	}
	// GOP not a multiple of anchor distance.
	if err := bConfig(10, 2).ValidateB(); err == nil {
		t.Fatal("GOP 10 with B=2 should fail")
	}
	if err := bConfig(12, 4).ValidateB(); err == nil {
		t.Fatal("B=4 should fail")
	}
}

func TestBStreamRoundTrip(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 24, Motion: video.MotionMedium, Seed: 31})
	cfg := bConfig(12, 2)
	encoded, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(encoded) != len(clip) {
		t.Fatalf("encoded %d frames, want %d", len(encoded), len(clip))
	}
	// Coding order: display numbers must cover 0..23 exactly once, and
	// every B frame must appear after its backward anchor.
	seen := map[int]bool{}
	lastAnchor := -1
	for _, ef := range encoded {
		if seen[ef.Number] {
			t.Fatalf("display index %d duplicated", ef.Number)
		}
		seen[ef.Number] = true
		switch ef.Type {
		case IFrame, PFrame:
			if ef.Number < lastAnchor {
				t.Fatalf("anchor %d out of order", ef.Number)
			}
			lastAnchor = ef.Number
		case BFrame:
			if ef.Number > lastAnchor {
				t.Fatalf("B frame %d before its backward anchor %d", ef.Number, lastAnchor)
			}
		}
	}
	decoded, err := DecodeSequenceB(encoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(clip) {
		t.Fatalf("decoded %d frames", len(decoded))
	}
	psnr := video.SequencePSNR(clip, decoded)
	if psnr < 28 {
		t.Fatalf("B-stream round trip PSNR %.1f too low", psnr)
	}
}

func TestBFrameTypesAndStructure(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 12, Motion: video.MotionLow, Seed: 5})
	cfg := bConfig(12, 2)
	encoded, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	types := map[int]FrameType{}
	for _, ef := range encoded {
		types[ef.Number] = ef.Type
	}
	// Display structure I B B P B B P B B P, then trailing frames with no
	// backward anchor are forced P.
	for d := 0; d < 12; d++ {
		want := BFrame
		if d%3 == 0 {
			want = PFrame
			if d%12 == 0 {
				want = IFrame
			}
		}
		if d > 9 { // past the last anchor (frames 10, 11)
			want = PFrame
		}
		if types[d] != want {
			t.Fatalf("display frame %d is %v want %v", d, types[d], want)
		}
	}
}

func TestBFramesCheaperThanP(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 24, Motion: video.MotionMedium, Seed: 9})
	cfg := bConfig(12, 2)
	encoded, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bSize, pSize, bN, pN int
	for _, ef := range encoded {
		switch ef.Type {
		case BFrame:
			bSize += ef.Size()
			bN++
		case PFrame:
			pSize += ef.Size()
			pN++
		}
	}
	if bN == 0 || pN == 0 {
		t.Fatal("stream should contain both B and P frames")
	}
	meanB := float64(bSize) / float64(bN)
	meanP := float64(pSize) / float64(pN)
	if meanB >= meanP {
		t.Fatalf("B frames (%.0f B) should be cheaper than P frames (%.0f B)", meanB, meanP)
	}
}

func TestBFrameLossDoesNotPropagate(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 24, Motion: video.MotionMedium, Seed: 13})
	cfg := bConfig(12, 2)
	encoded, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := DecodeSequenceB(encoded, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Damage one B frame's macroblocks (keep the entry so coding order
	// survives).
	damaged := make([]*EncodedFrame, len(encoded))
	var hitDisplay int
	for i, ef := range encoded {
		damaged[i] = ef
		if ef.Type == BFrame && hitDisplay == 0 {
			c := ef.Clone()
			for m := range c.MBData {
				c.MBData[m] = nil
			}
			damaged[i] = c
			hitDisplay = ef.Number
		}
	}
	decoded, err := DecodeSequenceB(damaged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := range clean {
		if d == hitDisplay {
			continue // the concealed frame itself may differ
		}
		if video.MSE(clean[d], decoded[d]) != 0 {
			t.Fatalf("B-frame loss leaked into display frame %d", d)
		}
	}
}

func TestBZeroFallsBackToPlain(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 6, Motion: video.MotionLow, Seed: 3})
	cfg := bConfig(6, 0)
	a, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSequence(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Size() != b[i].Size() || a[i].Type != b[i].Type {
			t.Fatalf("BFrames=0 should match the plain encoder at frame %d", i)
		}
	}
}

func TestBFrameTypeString(t *testing.T) {
	if BFrame.String() != "B" {
		t.Fatal("BFrame name wrong")
	}
}

func TestBStreamThroughPacketizer(t *testing.T) {
	clip := video.Generate(video.SceneConfig{W: 96, H: 96, Frames: 12, Motion: video.MotionMedium, Seed: 17})
	cfg := bConfig(12, 2)
	encoded, err := EncodeSequenceB(clip, cfg)
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewReassembler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range encoded {
		pkts, err := Packetize(ef, 1400)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			if p.Type == BFrame && p.IsIFrame() {
				t.Fatal("B packets must not be classed as I")
			}
			if err := re.Add(p.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Reassemble by display number, then restore coding order for decode.
	byDisplay := re.Frames(len(clip))
	order := make([]*EncodedFrame, 0, len(encoded))
	for _, ef := range encoded {
		got := byDisplay[ef.Number]
		if got == nil {
			t.Fatalf("frame %d missing after reassembly", ef.Number)
		}
		order = append(order, got)
	}
	decoded, err := DecodeSequenceB(order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if psnr := video.SequencePSNR(clip, decoded); psnr < 28 {
		t.Fatalf("PSNR %.1f after packetized B round trip", psnr)
	}
}
