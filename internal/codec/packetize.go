package codec

import (
	"encoding/binary"
	"fmt"
)

// Slice packetization. A packet carries a self-contained slice: a run of
// consecutive macroblocks of one frame plus enough header to place them.
// I-frames are much larger than the MTU and fragment into many packets;
// P-frames typically fit in one small packet — exactly the two arrival
// classes of the paper's 2-MMPP model (Section 4.2.1).
//
// Wire format (all integers unsigned varints):
//
//	frameNumber | frameType | mbStart | mbCount | (len | bytes)*mbCount

// Packet is one network-ready slice of an encoded frame.
type Packet struct {
	FrameNumber int
	Type        FrameType
	MBStart     int
	MBCount     int
	Payload     []byte // serialized slice, the unit of encryption
}

// IsIFrame reports whether the packet belongs to an I-frame, the property
// encryption policies select on.
func (p Packet) IsIFrame() bool { return p.Type == IFrame }

// Packetize splits an encoded frame into slice packets whose payloads do
// not exceed mtu bytes (individual macroblocks larger than the MTU get a
// packet of their own; with sane quantisation this does not happen at CIF).
func Packetize(ef *EncodedFrame, mtu int) ([]Packet, error) {
	if mtu < 64 {
		return nil, fmt.Errorf("codec: mtu %d too small", mtu)
	}
	var out []Packet
	start := 0
	for start < len(ef.MBData) {
		end := nextSliceEnd(ef, start, mtu)
		payload := AppendSlice(make([]byte, 0, sliceLen(ef, start, end-start)), ef, start, end-start)
		out = append(out, Packet{
			FrameNumber: ef.Number,
			Type:        ef.Type,
			MBStart:     start,
			MBCount:     end - start,
			Payload:     payload,
		})
		start = end
	}
	return out, nil
}

// ParsePacket decodes a slice payload back into a Packet with the
// macroblock chunks attached (stored concatenated in Payload; use
// SliceMBs to extract them).
func ParsePacket(payload []byte) (Packet, error) {
	p := Packet{Payload: payload}
	rest := payload
	get := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("codec: bad varint in slice header")
		}
		rest = rest[n:]
		return v, nil
	}
	fn, err := get()
	if err != nil {
		return p, err
	}
	ft, err := get()
	if err != nil {
		return p, err
	}
	if ft > uint64(BFrame) {
		return p, fmt.Errorf("codec: bad frame type %d", ft)
	}
	ms, err := get()
	if err != nil {
		return p, err
	}
	mc, err := get()
	if err != nil {
		return p, err
	}
	p.FrameNumber = int(fn)
	p.Type = FrameType(ft)
	p.MBStart = int(ms)
	p.MBCount = int(mc)
	return p, nil
}

// SliceMBs extracts the macroblock chunks of a parsed slice payload.
func SliceMBs(payload []byte) (mbStart int, chunks [][]byte, err error) {
	rest := payload
	get := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("codec: bad varint in slice")
		}
		rest = rest[n:]
		return v, nil
	}
	if _, err = get(); err != nil { // frame number
		return 0, nil, err
	}
	if _, err = get(); err != nil { // type
		return 0, nil, err
	}
	ms, err := get()
	if err != nil {
		return 0, nil, err
	}
	if ms > 1<<20 {
		// Also keeps int(ms) from wrapping negative on a hostile varint,
		// which would slip past the reassembler's upper-bound check and
		// index out of range.
		return 0, nil, fmt.Errorf("codec: implausible slice start %d", ms)
	}
	mc, err := get()
	if err != nil {
		return 0, nil, err
	}
	if mc > 1<<20 {
		return 0, nil, fmt.Errorf("codec: implausible slice size %d", mc)
	}
	chunks = make([][]byte, mc)
	for i := range chunks {
		l, err := get()
		if err != nil {
			return 0, nil, err
		}
		if uint64(len(rest)) < l {
			return 0, nil, fmt.Errorf("codec: slice truncated")
		}
		chunks[i] = rest[:l]
		rest = rest[l:]
	}
	return int(ms), chunks, nil
}

// Reassembler collects slice payloads back into per-frame EncodedFrames,
// leaving nil chunks where slices never arrived (lost or, at the
// eavesdropper, encrypted). It is the receive-side counterpart of
// Packetize.
type Reassembler struct {
	cfg    Config
	frames map[int]*EncodedFrame
}

// NewReassembler returns a reassembler for streams encoded with cfg.
func NewReassembler(cfg Config) (*Reassembler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Reassembler{cfg: cfg, frames: make(map[int]*EncodedFrame)}, nil
}

// Add incorporates one received slice payload. Damaged payloads are
// reported but otherwise ignored (the affected macroblocks stay lost).
func (r *Reassembler) Add(payload []byte) error {
	p, err := ParsePacket(payload)
	if err != nil {
		return err
	}
	mbStart, chunks, err := SliceMBs(payload)
	if err != nil {
		return err
	}
	total := r.cfg.MBCols() * r.cfg.MBRows()
	if mbStart < 0 || len(chunks) > total || mbStart > total-len(chunks) {
		return fmt.Errorf("codec: slice range [%d,%d) exceeds %d macroblocks", mbStart, mbStart+len(chunks), total)
	}
	f := r.frames[p.FrameNumber]
	if f == nil {
		f = &EncodedFrame{Number: p.FrameNumber, Type: p.Type, MBData: make([][]byte, total)}
		r.frames[p.FrameNumber] = f
	}
	for i, c := range chunks {
		// The range check above already constrains mbStart+len(chunks)
		// against total, but total and len(f.MBData) are only equal
		// while every frame of the session was built by this
		// reassembler; re-checking against the destination itself keeps
		// the write in bounds under any future refactor (and makes the
		// bounds proof local, which the netbound gate verifies).
		j := mbStart + i
		if j >= len(f.MBData) {
			return fmt.Errorf("codec: slice chunk %d lands outside %d macroblocks", j, len(f.MBData))
		}
		f.MBData[j] = append([]byte(nil), c...)
	}
	return nil
}

// Frame returns the (possibly partial) frame n, or nil if nothing of it
// arrived.
func (r *Reassembler) Frame(n int) *EncodedFrame { return r.frames[n] }

// Frames returns the first total frames in order; entries are nil for
// frames of which nothing arrived.
func (r *Reassembler) Frames(total int) []*EncodedFrame {
	out := make([]*EncodedFrame, total)
	for i := range out {
		out[i] = r.frames[i]
	}
	return out
}
