#!/usr/bin/env bash
# bench.sh — run the PR's headline benchmarks and write BENCH_PR1.json.
#
# Captures ns/op and allocs/op for the codec micro-benchmarks
# (internal/codec) and the end-to-end codec + figure benchmarks at the
# repo root, and compares them against the recorded seed baseline
# (commit 0ad010c, same reduced geometry, measured on this class of
# machine). The figure benchmarks run one iteration each — they already
# regenerate a full table per iteration.
#
# Also runs the observability-tax pair (BenchmarkEncodeMetricsOff/On)
# and writes BENCH_PR3.json with the measured overhead of leaving the
# metrics layer compiled in (off = shipping default) and recording (on).
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out=${1:-BENCH_PR1.json}
tmp=$(mktemp)
obs_tmp=$(mktemp)
trap 'rm -f "$tmp" "$obs_tmp"' EXIT

echo "running codec micro-benchmarks..." >&2
go test -run '^$' -bench 'BenchmarkFDCT8$|BenchmarkIDCT8$|BenchmarkMotionSearch$|BenchmarkEncodeFrameParallel$' \
	-benchmem -timeout 600s ./internal/codec | tee -a "$tmp" >&2

echo "running end-to-end codec and figure benchmarks..." >&2
go test -run '^$' -bench 'BenchmarkCodecEncode$|BenchmarkCodecDecode$|BenchmarkFig7DelaySamsung$|BenchmarkFig9FractionalP$' \
	-benchmem -timeout 1200s . | tee -a "$tmp" >&2

awk -v out="$out" '
BEGIN {
	# Seed baseline (commit 0ad010c): ns/op and allocs/op where recorded.
	base_ns["BenchmarkCodecEncode"] = 78300000;     base_allocs["BenchmarkCodecEncode"] = 13273
	base_ns["BenchmarkCodecDecode"] = 12300000;     base_allocs["BenchmarkCodecDecode"] = 121
	base_ns["BenchmarkFig7DelaySamsung"] = 4411000000; base_allocs["BenchmarkFig7DelaySamsung"] = 476584
	base_ns["BenchmarkFig9FractionalP"] = 2620000000;  base_allocs["BenchmarkFig9FractionalP"] = -1
	n = 0
}
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	names[n] = name; nsv[n] = ns; av[n] = allocs; n++
}
END {
	printf "{\n" > out
	printf "  \"pr\": \"PR1: parallel encode/simulate pipeline (row workers, AAN DCT, pooled scratch, concurrent runner)\",\n" >> out
	printf "  \"cpu\": \"%s\",\n", cpu >> out
	printf "  \"baseline_commit\": \"0ad010c\",\n" >> out
	printf "  \"benchmarks\": [\n" >> out
	for (i = 0; i < n; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_op\": %s", names[i], nsv[i] >> out
		if (av[i] != "") printf ", \"allocs_per_op\": %s", av[i] >> out
		if (names[i] in base_ns) {
			printf ", \"baseline_ns_per_op\": %.0f", base_ns[names[i]] >> out
			if (base_allocs[names[i]] >= 0)
				printf ", \"baseline_allocs_per_op\": %.0f", base_allocs[names[i]] >> out
			printf ", \"speedup\": %.2f", base_ns[names[i]] / nsv[i] >> out
		}
		printf "}%s\n", (i < n-1 ? "," : "") >> out
	}
	printf "  ]\n}\n" >> out
}
' "$tmp"

echo "wrote $out" >&2

echo "running observability-tax benchmarks..." >&2
go test -run '^$' -bench 'BenchmarkEncodeMetricsOff$|BenchmarkEncodeMetricsOn$' \
	-benchmem -count 5 -timeout 600s ./internal/codec | tee "$obs_tmp" >&2

awk -v out=BENCH_PR3.json '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^BenchmarkEncodeMetrics/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	# Best-of-N: the minimum is the least noisy estimate of the true cost.
	if (!(name in best) || ns + 0 < best[name] + 0) { best[name] = ns; al[name] = allocs }
}
END {
	off = best["BenchmarkEncodeMetricsOff"]
	on = best["BenchmarkEncodeMetricsOn"]
	overhead = (on / off - 1) * 100
	printf "{\n" > out
	printf "  \"pr\": \"PR3: zero-dependency observability layer\",\n" >> out
	printf "  \"cpu\": \"%s\",\n", cpu >> out
	printf "  \"benchmarks\": [\n" >> out
	printf "    {\"name\": \"BenchmarkEncodeMetricsOff\", \"ns_per_op\": %s, \"allocs_per_op\": %s},\n", off, al["BenchmarkEncodeMetricsOff"] >> out
	printf "    {\"name\": \"BenchmarkEncodeMetricsOn\", \"ns_per_op\": %s, \"allocs_per_op\": %s}\n", on, al["BenchmarkEncodeMetricsOn"] >> out
	printf "  ],\n" >> out
	printf "  \"metrics_on_overhead_percent\": %.2f\n", overhead >> out
	printf "}\n" >> out
	if (overhead > 2) {
		printf "FAIL: metrics-on encode overhead %.2f%% exceeds the 2%% budget\n", overhead > "/dev/stderr"
		exit 1
	}
}
' "$obs_tmp"

echo "wrote BENCH_PR3.json" >&2
