package transport

import (
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/ledger"
	"repro/internal/rtp"
	"repro/internal/vcrypt"
)

// Multi-tenant UDP ingest (ROADMAP item 1): one relay socket carrying
// thousands of concurrent mobile uploads. Each RTP SSRC is a session;
// per-session state (sequence extension, dedup window, reassembler,
// token bucket) lives in sharded maps so admission and the packet path
// never contend on one lock, and a pool of reader goroutines drains the
// socket so a slow decrypt on one core cannot back the kernel buffer up.
//
// Two control datagrams ride on the same socket, distinguished from RTP
// the same way NACKs are (the magic's version bits are invalid):
//
//	"TVRJ" (4) | retry-after millis (4, big endian)   server → client
//	"TVFN" (4) | ssrc (4, big endian)                 client → server
//
// TVRJ answers an arrival refused by admission control — backpressure
// with an explicit retry hint instead of a silent drop. TVFN lets a
// client end its session eagerly instead of waiting for idle eviction.

var (
	rejectMagic = [4]byte{'T', 'V', 'R', 'J'}
	finMagic    = [4]byte{'T', 'V', 'F', 'N'}
)

func marshalReject(retryAfter time.Duration) []byte {
	out := make([]byte, 8)
	copy(out[:4], rejectMagic[:])
	binary.BigEndian.PutUint32(out[4:], uint32(retryAfter.Milliseconds()))
	return out
}

func parseReject(data []byte) (retryAfter time.Duration, ok bool) {
	// Exact length: a UDP datagram is one whole control message, so
	// trailing bytes mean a corrupt or forged frame, not a stream split.
	if len(data) != 8 || [4]byte(data[:4]) != rejectMagic {
		return 0, false
	}
	return time.Duration(binary.BigEndian.Uint32(data[4:8])) * time.Millisecond, true
}

func marshalFIN(ssrc uint32) []byte {
	out := make([]byte, 8)
	copy(out[:4], finMagic[:])
	binary.BigEndian.PutUint32(out[4:], ssrc)
	return out
}

func parseFIN(data []byte) (ssrc uint32, ok bool) {
	if len(data) != 8 || [4]byte(data[:4]) != finMagic {
		return 0, false
	}
	return binary.BigEndian.Uint32(data[4:8]), true
}

// IngestConfig tunes the ingest server. The zero value of every knob
// picks a sensible default; Cfg, Alg and Key describe the streams the
// tenants send (all sessions share one clip format and key in this
// emulation — a deployment would key sessions individually).
type IngestConfig struct {
	Addr string       // listen address, e.g. "127.0.0.1:0"
	Cfg  codec.Config // codec configuration sessions reassemble under
	Alg  vcrypt.Algorithm
	Key  []byte // nil = no key: marked payloads become erasures

	// HeaderOnlyBytes mirrors the senders' Policy.HeaderOnlyBytes.
	HeaderOnlyBytes int

	Shards  int // session-map shards (default 16)
	Readers int // socket reader goroutines (default NumCPU, capped at 8)

	// MaxSessions caps resident sessions; past it new SSRCs are refused
	// with a reject datagram carrying RetryAfter (default 250ms).
	// 0 = unlimited.
	MaxSessions int
	RetryAfter  time.Duration

	// SessionRate/SessionBurst shape each session's token bucket in
	// packets/second. Rate 0 = unlimited.
	SessionRate  float64
	SessionBurst int

	// IdleTimeout evicts sessions with no arrivals for this long
	// (default 30s).
	IdleTimeout time.Duration
}

// IngestSessionStats is one session's bookkeeping snapshot.
type IngestSessionStats struct {
	Received   int   // first-delivery packets accepted
	Usable     int   // accepted packets that decrypted and reassembled cleanly
	Duplicates int   // arrivals whose sequence was already delivered
	Throttled  int   // arrivals discarded by the token bucket
	Bytes      int64 // payload bytes of first deliveries
}

// IngestTotals aggregates the server's lifetime counters (live sessions
// included). The fields mirror the obs metrics one-for-one so tests can
// cross-check exported values against this exact bookkeeping.
type IngestTotals struct {
	Packets          int64
	Usable           int64
	Duplicates       int64
	Throttled        int64
	Rejected         int64
	BadPackets       int64
	Bytes            int64
	SessionsStarted  int64
	SessionsFinished int64
	SessionsEvicted  int64
}

type ingestSession struct {
	mu      sync.Mutex
	ext     seqExtender
	window  *seqWindow
	asm     *codec.Reassembler
	limiter *TokenBucket // nil when SessionRate is 0
	stats   IngestSessionStats
	firstAt time.Time
	lastAt  time.Time
}

// The shard lock and the per-session locks nest in one fixed
// direction, checked by the lockorder pass:
//
//lint:lockorder ingestShard.mu -> ingestSession.mu (sweepLoop probes session idleness under the shard lock; never acquire a shard lock while holding a session lock)
type ingestShard struct {
	mu       sync.Mutex
	sessions map[uint32]*ingestSession
}

// IngestServer is the sharded multi-tenant UDP ingest daemon.
type IngestServer struct {
	cfg    IngestConfig
	conn   *net.UDPConn
	cipher *vcrypt.Cipher // nil without a key; concurrency-safe, shared by all sessions
	shards []*ingestShard
	active atomic.Int64 // resident sessions, for admission control

	// rejects bounds the reject-datagram chatter: under a reject storm
	// (thousands of refused clients hammering the cap) the server answers
	// a sample, not every arrival.
	rejects *TokenBucket

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	totals struct {
		packets, usable, dups, throttled, rejected, bad, bytes atomic.Int64
		started, finished, evicted                             atomic.Int64
	}
}

// NewIngestServer opens the socket and starts the reader pool and the
// idle-eviction sweeper.
func NewIngestServer(cfg IngestConfig) (*IngestServer, error) {
	// Validate the codec config once up front so per-session reassembler
	// construction cannot fail later.
	if _, err := codec.NewReassembler(cfg.Cfg); err != nil {
		return nil, err
	}
	var cipher *vcrypt.Cipher
	if cfg.Key != nil {
		var err error
		cipher, err = vcrypt.NewCipher(cfg.Alg, cfg.Key)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Readers <= 0 {
		cfg.Readers = runtime.NumCPU()
		if cfg.Readers > 8 {
			cfg.Readers = 8
		}
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 250 * time.Millisecond
	}
	if cfg.SessionBurst <= 0 {
		cfg.SessionBurst = 64
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	conn.SetReadBuffer(8 << 20) //nolint:errcheck // best effort; the default buffer only costs more drops
	s := &IngestServer{
		cfg:     cfg,
		conn:    conn,
		cipher:  cipher,
		shards:  make([]*ingestShard, cfg.Shards),
		rejects: NewTokenBucket(2000, 200),
		done:    make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i] = &ingestShard{sessions: make(map[uint32]*ingestSession)}
	}
	for i := 0; i < cfg.Readers; i++ {
		s.wg.Add(1)
		go s.readLoop()
	}
	s.wg.Add(1)
	go s.sweepLoop()
	return s, nil
}

// Addr returns the bound address to hand to clients.
func (s *IngestServer) Addr() string { return s.conn.LocalAddr().String() }

// shard maps an SSRC to its shard with a multiplicative hash, so both
// sequential and clustered SSRC allocations spread evenly.
func (s *IngestServer) shard(ssrc uint32) *ingestShard {
	return s.shards[shardIndex(ssrc, len(s.shards))]
}

// shardIndex is the shard-selection math, factored out so a unit test
// can pin it independently of GOARCH. The reduction must stay in uint32
// space: int(h) truncates to a negative value for half the hash range
// on 32-bit platforms, and a negative modulo indexes out of range.
func shardIndex(ssrc uint32, n int) int {
	h := ssrc * 2654435761 // Knuth's multiplicative constant
	return int(h % uint32(n))
}

// readLoop is one worker of the bounded reader pool: it drains datagrams
// from the shared socket into a persistent buffer and runs the packet
// path inline. Reassembler.Add copies what it keeps and decrypt works in
// place, so the buffer is reusable as soon as handle returns — the
// receive path allocates only when a session retains frame data.
func (s *IngestServer) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		s.handle(buf[:n], from)
	}
}

func (s *IngestServer) handle(data []byte, from *net.UDPAddr) {
	if ssrc, ok := parseFIN(data); ok {
		s.finish(ssrc, false)
		return
	}
	pkt, err := rtp.Parse(data)
	if err != nil {
		s.totals.bad.Add(1)
		mIngestBadPackets.Inc()
		return
	}
	sess := s.lookup(pkt.SSRC)
	if sess == nil {
		// Admission refused: answer (a bounded sample of) the refused
		// arrivals with an explicit retry hint. The write happens with no
		// locks held.
		s.totals.rejected.Add(1)
		mIngestRejected.Inc()
		ledger.Emit(ledger.EventReject, "ingest", uint64(pkt.SSRC), 0, "session cap")
		if s.rejects.Allow() {
			s.conn.WriteToUDP(marshalReject(s.cfg.RetryAfter), from) //nolint:errcheck // best effort, like the medium
		}
		return
	}
	s.process(sess, pkt)
}

// lookup returns the SSRC's session, creating it if admission allows;
// nil means the session cap refused a new tenant.
func (s *IngestServer) lookup(ssrc uint32) *ingestSession {
	sh := s.shard(ssrc)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sess := sh.sessions[ssrc]; sess != nil {
		return sess
	}
	if s.cfg.MaxSessions > 0 && s.active.Load() >= int64(s.cfg.MaxSessions) {
		return nil
	}
	// The codec config was validated in the constructor, so this cannot
	// fail.
	asm, _ := codec.NewReassembler(s.cfg.Cfg)
	// Stamp lastAt at admission so every session is sweepable from birth:
	// a tenant admitted here whose packets never complete the packet path
	// must not hold a MaxSessions slot forever.
	sess := &ingestSession{window: newSeqWindow(defaultSeqSpan), asm: asm, lastAt: time.Now()}
	if s.cfg.SessionRate > 0 {
		sess.limiter = NewTokenBucket(s.cfg.SessionRate, s.cfg.SessionBurst)
	}
	sh.sessions[ssrc] = sess
	mIngestSessionsActive.Set(s.active.Add(1))
	s.totals.started.Add(1)
	mIngestSessionsStarted.Inc()
	ledger.Emit(ledger.EventSessionStart, "ingest", uint64(ssrc), 0, "")
	return sess
}

func (s *IngestServer) process(sess *ingestSession, pkt rtp.Packet) {
	now := time.Now()
	sess.mu.Lock()
	if sess.limiter != nil && !sess.limiter.Allow() {
		sess.stats.Throttled++
		// A throttled arrival is still an arrival: without this refresh a
		// session that keeps sending but is mostly rate-limited looks
		// idle to sweepLoop and gets evicted mid-stream.
		sess.lastAt = now
		sess.mu.Unlock()
		s.totals.throttled.Add(1)
		mIngestThrottled.Inc()
		return
	}
	seq64 := sess.ext.Extend(pkt.Sequence)
	if sess.window.Mark(seq64) {
		sess.stats.Duplicates++
		sess.lastAt = now
		sess.mu.Unlock()
		s.totals.dups.Add(1)
		mIngestDuplicates.Inc()
		return
	}
	if sess.firstAt.IsZero() {
		sess.firstAt = now
	}
	sess.lastAt = now
	sess.stats.Received++
	sess.stats.Bytes += int64(len(pkt.Payload))
	usable := false
	if !pkt.Encrypted() || s.cipher != nil {
		payload := pkt.Payload
		if pkt.Encrypted() {
			span := len(payload)
			if s.cfg.HeaderOnlyBytes > 0 && s.cfg.HeaderOnlyBytes < span {
				span = s.cfg.HeaderOnlyBytes
			}
			s.cipher.DecryptPacket(seq64, payload[:span])
		}
		if err := sess.asm.Add(payload); err == nil {
			usable = true
			sess.stats.Usable++
		}
	}
	sess.mu.Unlock()
	s.totals.packets.Add(1)
	s.totals.bytes.Add(int64(len(pkt.Payload)))
	mIngestPackets.Inc()
	mIngestBytes.Add(int64(len(pkt.Payload)))
	if usable {
		s.totals.usable.Add(1)
		mIngestUsable.Inc()
	}
}

// finish removes one session, attributing the close to a client FIN or
// to the idle sweeper. Unknown SSRCs are ignored (a duplicated FIN).
func (s *IngestServer) finish(ssrc uint32, evicted bool) {
	sh := s.shard(ssrc)
	sh.mu.Lock()
	sess := sh.sessions[ssrc]
	if sess != nil {
		delete(sh.sessions, ssrc)
		mIngestSessionsActive.Set(s.active.Add(-1))
	}
	sh.mu.Unlock()
	if sess == nil {
		return
	}
	if evicted {
		s.totals.evicted.Add(1)
		mIngestSessionsEvicted.Inc()
		ledger.Emit(ledger.EventEvict, "ingest", uint64(ssrc), 0, "idle")
	} else {
		s.totals.finished.Add(1)
		mIngestSessionsFinished.Inc()
		ledger.Emit(ledger.EventSessionEnd, "ingest", uint64(ssrc), 0, "fin")
	}
	sess.mu.Lock()
	if !sess.firstAt.IsZero() {
		mIngestSessionSeconds.Observe(sess.lastAt.Sub(sess.firstAt).Seconds())
	}
	sess.mu.Unlock()
}

// sweepLoop evicts idle sessions so abandoned uploads (a phone that
// walked out of range mid-clip and never resumed) release their slot
// and memory.
func (s *IngestServer) sweepLoop() {
	defer s.wg.Done()
	interval := s.cfg.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-s.cfg.IdleTimeout)
		for _, sh := range s.shards {
			var expired []uint32
			sh.mu.Lock()
			for ssrc, sess := range sh.sessions {
				sess.mu.Lock()
				// lastAt is stamped at admission, so it is never zero.
				idle := sess.lastAt.Before(cutoff)
				sess.mu.Unlock()
				if idle {
					expired = append(expired, ssrc)
				}
			}
			sh.mu.Unlock()
			for _, ssrc := range expired {
				s.finish(ssrc, true)
			}
		}
	}
}

// ActiveSessions returns how many sessions are resident right now.
func (s *IngestServer) ActiveSessions() int { return int(s.active.Load()) }

// SessionStats returns the bookkeeping of one resident session.
func (s *IngestServer) SessionStats(ssrc uint32) (IngestSessionStats, bool) {
	sh := s.shard(ssrc)
	sh.mu.Lock()
	sess := sh.sessions[ssrc]
	sh.mu.Unlock()
	if sess == nil {
		return IngestSessionStats{}, false
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.stats, true
}

// SessionFrames returns one resident session's reassembled clip.
func (s *IngestServer) SessionFrames(ssrc uint32, total int) []*codec.EncodedFrame {
	sh := s.shard(ssrc)
	sh.mu.Lock()
	sess := sh.sessions[ssrc]
	sh.mu.Unlock()
	if sess == nil {
		return nil
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.asm.Frames(total)
}

// Totals snapshots the server's lifetime counters.
func (s *IngestServer) Totals() IngestTotals {
	return IngestTotals{
		Packets:          s.totals.packets.Load(),
		Usable:           s.totals.usable.Load(),
		Duplicates:       s.totals.dups.Load(),
		Throttled:        s.totals.throttled.Load(),
		Rejected:         s.totals.rejected.Load(),
		BadPackets:       s.totals.bad.Load(),
		Bytes:            s.totals.bytes.Load(),
		SessionsStarted:  s.totals.started.Load(),
		SessionsFinished: s.totals.finished.Load(),
		SessionsEvicted:  s.totals.evicted.Load(),
	}
}

// Close shuts the socket down and waits for every reader and the sweeper
// to exit; no goroutine outlives it.
func (s *IngestServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.conn.Close()
	})
	s.wg.Wait()
	return err
}
