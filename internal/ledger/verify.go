package ledger

import (
	"bufio"
	"fmt"
	"io"
)

// VerifyReport summarises a successful chain replay.
type VerifyReport struct {
	Batches uint64
	Entries uint64
	// ByType counts verified entries per event kind, keyed by
	// EventType.String().
	ByType map[string]uint64
	// HeadHash is the header hash of the final batch — the chain head a
	// caller can pin externally.
	HeadHash [32]byte
}

// Verify replays a ledger stream and recomputes every hash. It fails on
// the first inconsistency: a batch index out of order, a prev-hash that
// does not chain, an entry count that disagrees with the entries
// present, a sequence gap across batches, a Merkle root that does not
// match the recomputed leaves, or a batch hash that does not match the
// recomputed header. What this proves: the decision log is exactly the
// one the sealer wrote, in order and complete. What it cannot prove:
// that events were emitted for actions the code never logged, or
// anything truncated after the last sealed batch (pin HeadHash
// externally to detect whole-suffix truncation).
func Verify(r io.Reader) (VerifyReport, error) {
	rep := VerifyReport{ByType: make(map[string]uint64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var prevHash [32]byte
	var nextIndex, nextSeq uint64
	var scratch []byte
	leaves := make([][32]byte, 0, 256)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		b, claimed, err := decodeLine(raw)
		if err != nil {
			return rep, fmt.Errorf("line %d: %w", line, err)
		}
		if b.Index != nextIndex {
			return rep, fmt.Errorf("line %d: batch index %d, want %d (reordered or missing batch)", line, b.Index, nextIndex)
		}
		if b.PrevHash != prevHash {
			return rep, fmt.Errorf("line %d: batch %d prev hash does not chain to previous batch", line, b.Index)
		}
		if int(b.Count) != len(b.Entries) {
			return rep, fmt.Errorf("line %d: batch %d claims %d entries, carries %d", line, b.Index, b.Count, len(b.Entries))
		}
		if len(b.Entries) == 0 {
			return rep, fmt.Errorf("line %d: batch %d is empty", line, b.Index)
		}
		if b.FirstSeq != nextSeq || b.Entries[0].Seq != nextSeq {
			return rep, fmt.Errorf("line %d: batch %d first seq %d, want %d (dropped entries)", line, b.Index, b.Entries[0].Seq, nextSeq)
		}
		leaves = leaves[:0]
		for i := range b.Entries {
			if b.Entries[i].Seq != nextSeq {
				return rep, fmt.Errorf("line %d: batch %d entry %d has seq %d, want %d", line, b.Index, i, b.Entries[i].Seq, nextSeq)
			}
			nextSeq++
			var h [32]byte
			h, scratch = leafHash(&b.Entries[i], scratch)
			leaves = append(leaves, h)
			rep.ByType[b.Entries[i].Type.String()]++
		}
		if root := merkleRoot(leaves); root != b.Root {
			return rep, fmt.Errorf("line %d: batch %d merkle root mismatch (entry bytes tampered)", line, b.Index)
		}
		h := b.headerHash()
		if h != claimed {
			return rep, fmt.Errorf("line %d: batch %d header hash mismatch", line, b.Index)
		}
		prevHash = h
		nextIndex++
		rep.Batches++
		rep.Entries += uint64(len(b.Entries))
		rep.HeadHash = h
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("reading ledger: %w", err)
	}
	return rep, nil
}

// Tail parses the stream and returns the last n entries in order. It
// does not verify hashes — pair it with Verify when integrity matters.
func Tail(r io.Reader, n int) ([]Entry, error) {
	if n <= 0 {
		return nil, nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []Entry
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		b, _, err := decodeLine(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, b.Entries...)
		if len(out) > 2*n {
			out = append(out[:0], out[len(out)-n:]...)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading ledger: %w", err)
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out, nil
}
