// Command lintmut is the mutation-testing gate for the thriftylint
// analyzers: it seeds known violations — the exact bug classes the
// paper's invariants forbid, such as an I-frame leaving on a UDP socket
// without encryption or a mutex held across a pacing sleep — into a
// scratch copy of the root module and requires every one of them to be
// caught. A static-analysis suite that no longer fires on the bugs it
// was written for is worse than none (it certifies a broken tree as
// clean), so CI treats a surviving mutant as a build failure.
//
// Usage:
//
//	lintmut [-root moduleDir] [-quick] [-list] [-v] [-j n]
//
// -quick runs the deterministic fast subset (one mutant per analyzer
// family) used by scripts/lint.sh; CI runs the full set. Mutants are
// analyzed concurrently on a bounded worker pool (-j), each in a
// private scratch copy of the module under the system temp directory,
// so runs are order-independent; results are printed in declaration
// order, keeping the output byte-identical whatever the scheduling.
// The root module is never modified.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/tools/analyzers/lintkit"
	"repro/tools/analyzers/passes/auditemit"
	"repro/tools/analyzers/passes/bitioerr"
	"repro/tools/analyzers/passes/bufown"
	"repro/tools/analyzers/passes/cryptorand"
	"repro/tools/analyzers/passes/exhaustenum"
	"repro/tools/analyzers/passes/floateq"
	"repro/tools/analyzers/passes/ivunique"
	"repro/tools/analyzers/passes/lockheld"
	"repro/tools/analyzers/passes/lockorder"
	"repro/tools/analyzers/passes/netbound"
	"repro/tools/analyzers/passes/plainleak"
	"repro/tools/analyzers/passes/seededrand"
	"repro/tools/analyzers/passes/seqwrap"
	"repro/tools/analyzers/passes/walltime"
)

// patch is one textual substitution inside a mutant's file.
type patch struct {
	Old string
	New string
	// Occ selects the 1-based occurrence of Old when the file contains
	// it more than once; 0 requires the match to be unique.
	Occ int
}

// mutant is one seeded violation: the file edit plus the analyzer that
// must catch it. Every mutant keeps the module compiling — the gate
// tests the analyzers, not the compiler.
type mutant struct {
	ID       string
	Analyzer *lintkit.Analyzer
	File     string // path relative to the module root
	Patches  []patch
	Desc     string
	Quick    bool
}

const (
	// The zero-copy send paths encrypt the payload region of the marshaled
	// wire buffer in place; resume.go still encrypts a detached payload.
	udpEncryptCall    = "cipher.EncryptPacket(uint64(seq), out[rtp.HeaderSize:][:s.Policy.EncryptSpan(len(payload))])"
	httpEncryptCall   = "cipher.EncryptPacket(seq, wire[segmentHeaderSize:][:s.Policy.EncryptSpan(len(payload))])"
	resumeEncryptCall = "cipher.EncryptPacket(seq, payload[:s.Policy.EncryptSpan(len(payload))])"
)

var mutants = []mutant{
	// --- plainleak: the selective-encryption invariant ---
	{
		ID: "udp-iframe-plain", Analyzer: plainleak.Analyzer,
		File:    "internal/transport/live_udp.go",
		Patches: []patch{{Old: udpEncryptCall, New: "_ = cipher", Occ: 2}},
		Desc:    "LiveUDPSendReliable sends I-frame packets over UDP without encrypting them",
		Quick:   true,
	},
	{
		ID: "udp-plain", Analyzer: plainleak.Analyzer,
		File:    "internal/transport/live_udp.go",
		Patches: []patch{{Old: udpEncryptCall, New: "_ = cipher", Occ: 1}},
		Desc:    "LiveUDPSend drops the EncryptPacket call on the selected path",
	},
	{
		ID: "http-plain", Analyzer: plainleak.Analyzer,
		File:    "internal/transport/live_http.go",
		Patches: []patch{{Old: httpEncryptCall, New: "_ = cipher"}},
		Desc:    "the HTTP segment streamer pipes plaintext payloads into the upload body",
	},
	{
		ID: "resume-plain", Analyzer: plainleak.Analyzer,
		File:    "internal/transport/resume.go",
		Patches: []patch{{Old: resumeEncryptCall, New: "_ = cipher"}},
		Desc:    "resumable uploads re-segment without re-encrypting after a restart",
	},
	{
		ID: "udp-guard-bypass", Analyzer: plainleak.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: "encrypted := selector.ShouldEncrypt(pkt.IsIFrame())",
			New: "_ = selector\n\t\t\tencrypted := pkt.IsIFrame()",
			Occ: 1,
		}},
		Desc: "the encryption decision no longer comes from the policy selector, so plaintext sends are unsanctioned",
	},
	{
		ID: "http-guard-bypass", Analyzer: plainleak.Analyzer,
		File: "internal/transport/live_http.go",
		Patches: []patch{{
			Old: "encrypted := selector.ShouldEncrypt(pkt.IsIFrame())",
			New: "_ = selector\n\t\t\t\tencrypted := pkt.IsIFrame()",
		}},
		Desc: "the HTTP streamer guesses the policy instead of asking the selector",
	},

	// --- lockheld: no parking with a mutex held ---
	{
		ID: "nack-under-lock", Analyzer: lockheld.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: "\t\t\tbufMu.Unlock()\n\t\t\tfor _, out := range resend {",
			New: "\t\t\tfor _, out := range resend {",
		}},
		Desc:  "NACK retransmits go back to writing UDP datagrams while holding the I-frame buffer lock",
		Quick: true,
	},
	{
		ID: "pacer-under-lock", Analyzer: lockheld.Analyzer,
		File: "internal/netem/proxy.go",
		Patches: []patch{{
			Old: "\tp.mu.Lock()\n\tdefer p.mu.Unlock()\n\tif p.cutAfter <= 0 {\n\t\treturn n, false\n\t}",
			New: "\tp.mu.Lock()\n\tdefer p.mu.Unlock()\n\tif p.pacer != nil {\n\t\tp.pacer.Wait(n)\n\t}\n\tif p.cutAfter <= 0 {\n\t\treturn n, false\n\t}",
		}},
		Desc:  "the proxy budget accountant parks on Pacer.Wait with its mutex held",
		Quick: true,
	},
	{
		ID: "ibuf-defer-lock", Analyzer: lockheld.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: "\t\t\t\tbufMu.Lock()\n\t\t\t\tiBuf[uint64(seq)] = out\n\t\t\t\tbufMu.Unlock()",
			New: "\t\t\t\tbufMu.Lock()\n\t\t\t\tiBuf[uint64(seq)] = out\n\t\t\t\tdefer bufMu.Unlock()",
		}},
		Desc: "the I-frame buffer lock is held until function return, across every subsequent send",
	},
	{
		ID: "nextseq-sleep", Analyzer: lockheld.Analyzer,
		File: "internal/transport/live_http.go",
		Patches: []patch{{
			Old: "\ts.mu.Lock()\n\tdefer s.mu.Unlock()\n\treturn s.next",
			New: "\ts.mu.Lock()\n\tdefer s.mu.Unlock()\n\ttime.Sleep(time.Millisecond)\n\treturn s.next",
		}},
		Desc: "the upload server's ack accessor sleeps inside its critical section",
	},
	{
		ID: "cond-wait-nolock", Analyzer: lockheld.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: "\tr.mu.Lock()\n\tdefer r.mu.Unlock()\n\tfor r.captured < n {",
			New: "\tfor r.captured < n {",
		}},
		Desc: "the receiver waiter calls cond.Wait without holding the mutex Wait is documented to require",
	},

	// --- exhaustenum: no silent fallthrough on enum growth ---
	{
		ID: "power-default-removed", Analyzer: exhaustenum.Analyzer,
		File: "internal/experiments/power.go",
		Patches: []patch{{
			Old: "\t\tdefault:\n\t\t\t// The headline comparison of Sections 1/6.3 is none vs\n\t\t\t// I-only vs full; intermediate policies (P-frames,\n\t\t\t// I+fraction-of-P, half-I) are deliberately outside this\n\t\t\t// figure and are skipped, not an accident of a new Mode.\n\t\t}",
			New: "\t\t}",
		}},
		Desc:  "the power-savings dispatch loses its reasoned default and silently skips future modes",
		Quick: true,
	},
	{
		ID: "metrics-default-removed", Analyzer: exhaustenum.Analyzer,
		File: "internal/codec/metrics.go",
		Patches: []patch{{
			Old: "\tdefault:\n\t\tmFramesEncodedB.Inc()\n\t\tmFrameBytesB.Add(int64(out.Size()))\n\t}",
			New: "\t}",
		}},
		Desc: "the per-frame counters stop counting B-frames without covering the member",
	},

	// --- walltime / floateq / bitioerr: stripping a justified
	// suppression must re-trigger the underlying finding, proving both
	// the pass and the allow plumbing still work ---
	{
		ID: "walltime-pacer", Analyzer: walltime.Analyzer,
		File: "internal/netem/netem.go",
		Patches: []patch{{
			Old: "now := time.Now() //lint:allow walltime real-socket feature: the pacer shapes live connections on the wall clock",
			New: "now := time.Now()",
		}},
		Desc:  "the pacer's wall-clock read loses its justification",
		Quick: true,
	},
	{
		ID: "walltime-proxy", Analyzer: walltime.Analyzer,
		File: "internal/netem/proxy.go",
		Patches: []patch{{
			Old: "blackout := time.Now().Before(p.downUntil) //lint:allow walltime real-socket feature: blackout windows on live TCP relays are wall-clock by design",
			New: "blackout := time.Now().Before(p.downUntil)",
		}},
		Desc: "the proxy blackout check loses its justification",
	},
	{
		ID: "floateq-boundary", Analyzer: floateq.Analyzer,
		File: "internal/stats/rng.go",
		Patches: []patch{{
			Old: "if p == 1 { //lint:allow floateq exact boundary: callers pass the literal 1.0 for a sure success",
			New: "if p == 1 {",
		}},
		Desc: "an exact float comparison loses its justification",
	},
	{
		ID: "bitioerr-status", Analyzer: bitioerr.Analyzer,
		File: "internal/transport/live_http.go",
		Patches: []patch{{
			Old: "fmt.Fprintf(w, \"ok %d next %d\\n\", count, next) //lint:allow bitioerr best-effort status body; the header already carried the answer",
			New: "fmt.Fprintf(w, \"ok %d next %d\\n\", count, next)",
		}},
		Desc: "a dropped write error loses its justification",
	},

	// --- bufown: linear ownership of pooled wire buffers ---
	{
		ID: "bufown-leak", Analyzer: bufown.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: "\t\t\tmUDPBytesSent.Add(int64(len(out)))\n\t\t\tpool.Put(pkt)\n\t\t\tseq++",
			New: "\t\t\tmUDPBytesSent.Add(int64(len(out)))\n\t\t\tseq++",
		}},
		Desc:  "LiveUDPSend stops recycling sent packets: every iteration leaks its pooled buffer",
		Quick: true,
	},
	{
		ID: "bufown-double-put", Analyzer: bufown.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: "\t\t\t\tpool.Put(pkt)\n\t\t\t\treturn rep, fmt.Errorf(\"transport: send to receiver: %w\", err)",
			New: "\t\t\t\tpool.Put(pkt)\n\t\t\t\tpool.Put(pkt)\n\t\t\t\treturn rep, fmt.Errorf(\"transport: send to receiver: %w\", err)",
		}},
		Desc: "the send error path releases the same packet twice, poisoning the pool with a duplicate buffer",
	},

	// --- lockorder: one module-wide lock-acquisition order ---
	{
		ID: "lockorder-inverted", Analyzer: lockorder.Analyzer,
		File: "internal/transport/ingest.go",
		Patches: []patch{{
			Old: "\tsess.mu.Lock()\n\tif !sess.firstAt.IsZero() {",
			New: "\tsess.mu.Lock()\n\tsh.mu.Lock()\n\tsh.mu.Unlock()\n\tif !sess.firstAt.IsZero() {",
		}},
		Desc:  "finish re-acquires the shard lock under the session lock, reversing the declared shard -> session order",
		Quick: true,
	},

	// --- auditemit: every audited decision leaves a ledger record ---
	{
		ID: "auditemit-evict", Analyzer: auditemit.Analyzer,
		File: "internal/transport/ingest.go",
		Patches: []patch{{
			Old: "\t\tmIngestSessionsEvicted.Inc()\n\t\tledger.Emit(ledger.EventEvict, \"ingest\", uint64(ssrc), 0, \"idle\")",
			New: "\t\tmIngestSessionsEvicted.Inc()",
		}},
		Desc:  "idle evictions no longer write the EventEvict ledger record",
		Quick: true,
	},
	{
		ID: "auditemit-epoch", Analyzer: auditemit.Analyzer,
		File: "internal/transport/resume.go",
		Patches: []patch{{
			Old: "\t\t\t\tledger.Emit(ledger.EventReencode, \"resume\", 0, 0, oldPolicy)\n\t\t\t\tledger.Emit(ledger.EventEpoch, \"resume\", base, 0, \"\")",
			New: "\t\t\t\tledger.Emit(ledger.EventReencode, \"resume\", 0, 0, oldPolicy)",
		}},
		Desc: "re-encode restarts mint a fresh sequence epoch without the EventEpoch record",
	},

	// --- cryptorand / seededrand: randomness hygiene ---
	{
		ID: "cryptorand-mathrand", Analyzer: cryptorand.Analyzer,
		File: "internal/vcrypt/handshake.go",
		Patches: []patch{
			{Old: "\t\"crypto/rand\"", New: "\trand \"math/rand\""},
			{Old: "\t\trng = rand.Reader", New: "\t\trng = rand.New(rand.NewSource(1))"},
		},
		Desc:  "handshake key material falls back to math/rand",
		Quick: true,
	},
	{
		ID: "seededrand-global", Analyzer: seededrand.Analyzer,
		File: "internal/stats/rng.go",
		Patches: []patch{
			{Old: "import \"math\"", New: "import (\n\t\"math\"\n\t\"math/rand\"\n)"},
			{Old: "\tu := r.Float64()", New: "\tu := rand.Float64()", Occ: 1},
		},
		Desc: "an exponential deviate silently switches to the unseeded global generator",
	},

	// --- netbound: static bounds proofs on attacker-controlled integers ---
	{
		ID: "netbound-reasm-unchecked", Analyzer: netbound.Analyzer,
		File: "internal/codec/packetize.go",
		Patches: []patch{{
			Old: "\t\tj := mbStart + i\n\t\tif j >= len(f.MBData) {\n\t\t\treturn fmt.Errorf(\"codec: slice chunk %d lands outside %d macroblocks\", j, len(f.MBData))\n\t\t}\n\t\tf.MBData[j] = append([]byte(nil), c...)",
			New: "\t\tf.MBData[mbStart+i] = append([]byte(nil), c...)",
		}},
		Desc: "the reassembler indexes its frame buffer with a wire-decoded offset and no local bounds proof",
	},
	{
		ID: "netbound-segment-alloc", Analyzer: netbound.Analyzer,
		File: "internal/transport/live_http.go",
		Patches: []patch{{
			Old: "\tif n > 1<<24 {\n\t\treturn 0, false, nil, fmt.Errorf(\"transport: implausible segment of %d bytes\", n)\n\t}\n\tpayload = make([]byte, n)",
			New: "\tpayload = make([]byte, n)",
		}},
		Desc: "ReadSegment allocates an attacker-sized payload buffer without capping the wire length field",
	},
	{
		ID: "netbound-container-count", Analyzer: netbound.Analyzer,
		File: "internal/codec/container.go",
		Patches: []patch{{
			Old: "\tif count > 1<<20 {\n\t\treturn Config{}, nil, fmt.Errorf(\"codec: implausible frame count %d\", count)\n\t}\n",
			New: "",
		}},
		Desc:  "the container reader sizes its frame table straight from an unchecked varint",
		Quick: true,
	},
	{
		ID: "netbound-slice-trunc", Analyzer: netbound.Analyzer,
		File: "internal/codec/packetize.go",
		Patches: []patch{{
			Old: "\t\tif uint64(len(rest)) < l {\n\t\t\treturn 0, nil, fmt.Errorf(\"codec: slice truncated\")\n\t\t}\n\t\tchunks[i] = rest[:l]",
			New: "\t\tchunks[i] = rest[:l]",
		}},
		Desc: "SliceMBs slices chunk bytes by a wire length with the truncation guard removed",
	},

	// --- seqwrap: no raw ordering arithmetic on wrapping counters ---
	{
		ID: "seqwrap-raw-compare", Analyzer: seqwrap.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: "\t\tseq64 := ext.Extend(pkt.Sequence)",
			New: "\t\tlate := pkt.Sequence > 0x8000\n\t\t_ = late\n\t\tseq64 := ext.Extend(pkt.Sequence)",
		}},
		Desc:  "the receiver orders arrivals by raw 16-bit sequence, which inverts at every wrap",
		Quick: true,
	},

	// --- ivunique: the cipher IV must ride the extended 64-bit sequence ---
	{
		ID: "ivunique-truncated-iv", Analyzer: ivunique.Analyzer,
		File: "internal/transport/live_udp.go",
		Patches: []patch{{
			Old: udpEncryptCall,
			New: "cipher.EncryptPacket(uint64(uint16(seq)), out[rtp.HeaderSize:][:s.Policy.EncryptSpan(len(payload))])",
			Occ: 1,
		}},
		Desc:  "the UDP sender truncates its IV counter to 16 bits before widening it back: keystream reuse every 65536 packets",
		Quick: true,
	},
}

// gateAnalyzers is the union of analyzers the mutants target: the
// pristine copy must be clean under all of them before mutation starts.
func gateAnalyzers() []*lintkit.Analyzer {
	seen := map[*lintkit.Analyzer]bool{}
	var out []*lintkit.Analyzer
	for _, m := range mutants {
		if !seen[m.Analyzer] {
			seen[m.Analyzer] = true
			out = append(out, m.Analyzer)
		}
	}
	return out
}

func main() {
	root := flag.String("root", ".", "directory of the module to mutate")
	quick := flag.Bool("quick", false, "run only the fast per-family subset")
	list := flag.Bool("list", false, "list the mutants and exit")
	verbose := flag.Bool("v", false, "print per-mutant findings")
	jobs := flag.Int("j", defaultJobs(), "mutants analyzed concurrently")
	flag.Parse()
	if *list {
		for _, m := range mutants {
			q := " "
			if m.Quick {
				q = "q"
			}
			fmt.Printf("%s %-24s %-12s %s\n", q, m.ID, m.Analyzer.Name, m.Desc)
		}
		return
	}
	if err := run(*root, *quick, *verbose, *jobs, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lintmut:", err)
		os.Exit(1)
	}
}

// defaultJobs bounds the worker pool: each in-flight mutant holds a
// full type-checked copy of the module in memory, so the pool is capped
// below the core count on very wide machines.
func defaultJobs() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// run copies the module once and verifies the pristine copy is clean,
// then fans the selected mutants out over a bounded worker pool — each
// mutant gets a private scratch copy of the pristine tree — and
// requires every mutant's analyzer to fire. Results are reported in
// declaration order regardless of which worker finishes first.
func run(root string, quick, verbose bool, jobs int, out io.Writer) error {
	selected := mutants
	if quick {
		selected = nil
		for _, m := range mutants {
			if m.Quick {
				selected = append(selected, m)
			}
		}
	}
	if jobs < 1 {
		jobs = 1
	}

	pristineDir, err := copyModule(root)
	if err != nil {
		return err
	}
	defer os.RemoveAll(pristineDir)

	pristine, err := analyze(pristineDir, gateAnalyzers())
	if err != nil {
		return err
	}
	if len(pristine) > 0 {
		for _, d := range pristine {
			fmt.Fprintln(out, d)
		}
		return fmt.Errorf("pristine module has %d finding(s); fix the tree before mutation testing", len(pristine))
	}

	type result struct {
		diags []lintkit.Diagnostic
		err   error
	}
	results := make([]result, len(selected))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i := range selected {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			diags, err := runMutant(pristineDir, selected[i])
			results[i] = result{diags: diags, err: err}
		}(i)
	}
	wg.Wait()

	survived := 0
	for i, m := range selected {
		r := results[i]
		if r.err != nil {
			return fmt.Errorf("%s: %w", m.ID, r.err)
		}
		if len(r.diags) == 0 {
			fmt.Fprintf(out, "SURVIVED %-24s %-12s %s\n", m.ID, m.Analyzer.Name, m.Desc)
			survived++
			continue
		}
		fmt.Fprintf(out, "killed   %-24s %-12s %d finding(s)\n", m.ID, m.Analyzer.Name, len(r.diags))
		if verbose {
			for _, d := range r.diags {
				fmt.Fprintln(out, "  ", d)
			}
		}
	}
	fmt.Fprintf(out, "lintmut: %d/%d mutants killed\n", len(selected)-survived, len(selected))
	if survived > 0 {
		return fmt.Errorf("%d mutant(s) survived: the analyzers no longer catch the bug classes they gate", survived)
	}
	return nil
}

// runMutant copies the verified pristine tree into a private scratch
// directory, applies one mutant and runs its analyzer. Full isolation
// keeps mutants order-independent and safe to run concurrently; the
// scratch copy is discarded rather than restored.
func runMutant(pristineDir string, m mutant) ([]lintkit.Diagnostic, error) {
	scratch, err := copyModule(pristineDir)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	path := filepath.Join(scratch, filepath.FromSlash(m.File))
	orig, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mutated, err := applyPatches(string(orig), m.Patches)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.File, err)
	}
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		return nil, err
	}
	diags, err := analyze(scratch, []*lintkit.Analyzer{m.Analyzer})
	if err != nil {
		return nil, fmt.Errorf("mutated module no longer analyzes (mutant must keep the tree type-checking): %w", err)
	}
	return diags, nil
}

// analyze loads the module at dir and runs the given analyzers.
func analyze(dir string, analyzers []*lintkit.Analyzer) ([]lintkit.Diagnostic, error) {
	pkgs, err := lintkit.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return lintkit.RunAnalyzers(pkgs, analyzers)
}

// applyPatches performs each substitution, enforcing the occurrence
// contract so a refactor that duplicates the anchor text fails loudly
// instead of mutating the wrong site.
func applyPatches(src string, patches []patch) (string, error) {
	for _, p := range patches {
		n := strings.Count(src, p.Old)
		switch {
		case n == 0:
			return "", fmt.Errorf("anchor %q not found (the code moved; update the mutant)", firstLine(p.Old))
		case p.Occ == 0 && n > 1:
			return "", fmt.Errorf("anchor %q matches %d times; set Occ", firstLine(p.Old), n)
		case p.Occ > n:
			return "", fmt.Errorf("anchor %q matches %d times, want occurrence %d", firstLine(p.Old), n, p.Occ)
		}
		occ := p.Occ
		if occ == 0 {
			occ = 1
		}
		idx := -1
		for i := 0; i < occ; i++ {
			next := strings.Index(src[idx+1:], p.Old)
			if next < 0 {
				return "", fmt.Errorf("anchor %q vanished mid-apply", firstLine(p.Old))
			}
			idx += 1 + next
		}
		src = src[:idx] + p.New + src[idx+len(p.Old):]
	}
	return src, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + "..."
	}
	return s
}

// copyModule copies the root module's sources into a scratch directory:
// go.mod/go.sum plus every .go file outside .git and the separate
// tools module.
func copyModule(root string) (string, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(filepath.Join(absRoot, "go.mod")); err != nil {
		return "", fmt.Errorf("%s is not a module root: %w", absRoot, err)
	}
	scratch, err := os.MkdirTemp("", "lintmut-")
	if err != nil {
		return "", err
	}
	err = filepath.WalkDir(absRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(absRoot, p)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || rel == "tools" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		base := d.Name()
		if !strings.HasSuffix(base, ".go") && base != "go.mod" && base != "go.sum" {
			return nil
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		dst := filepath.Join(scratch, rel)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		os.RemoveAll(scratch)
		return "", err
	}
	return scratch, nil
}
