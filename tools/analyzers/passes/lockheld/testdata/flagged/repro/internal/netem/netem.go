// Package netem is the miniature pacing layer of the lockheld
// fixtures: Pacer.Wait is the blocking intrinsic the pass knows.
package netem

// Pacer spaces packet departures.
type Pacer struct{}

// Wait parks until the next departure slot for n bytes.
func (p *Pacer) Wait(n int) {}
